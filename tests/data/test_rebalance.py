"""Cost-feedback rebalancer: patience gating and weighted splits."""
import numpy as np
import pytest

import repro.triolet as tri
from repro.cluster import MachineSpec
from repro.data import DataPlane, Rebalancer
from repro.runtime import CostContext, triolet_runtime
from repro.serial import register_function


@register_function
def _noop(x):
    return x


class TestPatience:
    BOUNDS = [(0, 50), (50, 100)]

    def test_single_lopsided_section_does_not_activate(self):
        r = Rebalancer(patience=2)
        r.observe(self.BOUNDS, [10.0, 1.0])
        assert not r.active
        assert r.weights(2) is None

    def test_balanced_section_resets_the_streak(self):
        r = Rebalancer(patience=2)
        r.observe(self.BOUNDS, [10.0, 1.0])
        r.observe(self.BOUNDS, [5.0, 5.0])  # balanced: workload shape, not a
        r.observe(self.BOUNDS, [10.0, 1.0])  # straggler -- streak restarts
        assert not r.active

    def test_persistent_imbalance_activates(self):
        r = Rebalancer(patience=2)
        r.observe(self.BOUNDS, [10.0, 1.0])
        r.observe(self.BOUNDS, [10.0, 1.0])
        assert r.active
        assert r.activations == 1

    def test_weighted_bounds_favor_the_fast_rank(self):
        r = Rebalancer(patience=1)
        r.observe(self.BOUNDS, [10.0, 1.0])  # rank 1 is 10x faster
        bounds = r.bounds(100, 2)
        assert bounds is not None
        (alo, ahi), (blo, bhi) = bounds
        assert ahi - alo < bhi - blo  # slow rank gets fewer rows
        assert alo == 0 and bhi == 100 and ahi == blo

    def test_staying_balanced_keeps_it_active(self):
        r = Rebalancer(patience=1)
        r.observe(self.BOUNDS, [10.0, 1.0])
        assert r.active
        r.observe(self.BOUNDS, [5.0, 5.0])
        assert r.active  # balance under weighting means it is working

    def test_disabled_never_activates(self):
        r = Rebalancer(patience=1, enabled=False)
        r.observe(self.BOUNDS, [10.0, 1.0])
        assert not r.active and r.observations == 0

    def test_reset(self):
        r = Rebalancer(patience=1)
        r.observe(self.BOUNDS, [10.0, 1.0])
        r.reset()
        assert not r.active and r.weights(2) is None


@pytest.mark.dataplane
class TestRuntimeRebalancing:
    def test_active_rebalancer_migrates_the_shard_boundary(self):
        """Once cost feedback marks rank 0 slow, the driver splits by
        rate, labels the section, and the plane migrates the boundary."""
        xs = np.arange(2000.0)
        machine = MachineSpec(nodes=2, cores_per_node=1)
        plane = DataPlane(rebalancer=Rebalancer(patience=2))
        with triolet_runtime(machine, plane=plane) as rt:
            h = rt.distribute(xs)
            first = tri.sum(tri.map(_noop, tri.par(h)))  # uniform placement
            # Feed the rebalancer a persistent straggler signal (rank 0
            # processes its rows 10x slower), as a throttled node would.
            # Reset first so section 1's balanced rates don't dilute it.
            plane.rebalancer.reset()
            for _ in range(plane.rebalancer.patience):
                plane.feedback([(0, 1000), (1000, 2000)], [10.0, 1.0])
            assert plane.rebalancer.active
            second = tri.sum(tri.map(_noop, tri.par(h)))  # weighted split
        assert first == second == pytest.approx(float(np.sum(xs)))
        rebal = [s for s in rt.sections if "rebal" in s.partition]
        assert rebal, "driver never used the weighted split"
        # Rank 1's shard grew past the uniform boundary: the missing rows
        # were shipped and counted as migration, and stay resident after.
        assert plane.totals["migrated_bytes"] > 0
        assert plane._placement[(1, h.array_id)][0] < 1000
