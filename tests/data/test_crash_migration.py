"""Crash during cost-feedback repartitioning (migration mid-flight).

The hard interleaving for the recovery accounting: the rebalancer has
activated, the plane has *planned* a boundary migration and counted its
bytes, and the executing attempt dies before the migrated rows land.
The invariants: migration bytes are not double-counted on the re-plan,
no shard is stranded (placement must match what stores actually hold),
and the recomputed value is bit-identical to the fault-free run.
"""
import numpy as np
import pytest

import repro.triolet as tri
from repro.cluster import FaultPlan, MachineSpec, RankCrash
from repro.data import DataPlane, Rebalancer
from repro.runtime import triolet_runtime
from repro.testing.invariants import check_plane
from repro.testing.kernels import k_square

pytestmark = [pytest.mark.dataplane, pytest.mark.recovery]

XS = np.arange(3000.0)
MACHINE = MachineSpec(nodes=3, cores_per_node=1)
BOUNDS = [(0, 1000), (1000, 2000), (2000, 3000)]
RATES = [10.0, 1.0, 1.0]  # rank 0 is a persistent straggler


def _run(faults=None):
    """One warm section, a forced rebalancer activation, then the
    weighted-split section (where the gated crash fires mid-migration)."""
    plane = DataPlane(rebalancer=Rebalancer(patience=2))
    with triolet_runtime(MACHINE, plane=plane, faults=faults) as rt:
        h = rt.distribute(XS)
        first = tri.sum(tri.map(k_square, tri.par(h)))
        plane.rebalancer.reset()
        for _ in range(plane.rebalancer.patience):
            plane.feedback(BOUNDS, RATES)
        assert plane.rebalancer.active
        second = tri.sum(tri.map(k_square, tri.par(h)))
    return rt, plane, first, second


def _crash_in_migration_section():
    return FaultPlan(faults=(RankCrash(rank=1, at=1e-6, section=1),))


class TestCrashDuringMigration:
    def test_value_bit_identical_and_no_double_counted_migration(self):
        rt0, plane0, a0, b0 = _run()
        assert plane0.totals["migrated_bytes"] > 0  # migration really ran

        rt, plane, a, b = _run(_crash_in_migration_section())
        assert (a, b) == (a0, b0)  # bit-identical scalars
        # The aborted migration's bytes were counted exactly once at plan
        # time; the post-crash re-ship is attributed to recovery
        # (reshipped placements), never folded into migration again.
        assert plane.totals["migrated_bytes"] == plane0.totals["migrated_bytes"]
        rep = rt.recovery_report
        assert rep.faults.get("crash") == 1
        assert rep.reshipped_bytes > 0
        assert plane.invalidations == 1

    def test_no_stranded_shard_after_aborted_migration(self):
        rt, plane, _a, _b = _run(_crash_in_migration_section())
        check_plane(plane)  # conservation + hull sanity
        placement = plane.placement_map()
        assert placement, "recovery re-ship left nothing resident"
        for (rank, aid), (lo, hi) in placement.items():
            actual = plane.worker_store(rank).resident_bounds(aid)
            assert actual is not None, f"stranded placement ({rank}, {aid})"
            alo, ahi = actual
            assert alo <= lo <= hi <= ahi

    def test_recovered_attempt_still_uses_the_weighted_split(self):
        """The crash must not discard the cost feedback: the re-executed
        section still partitions by rate (the 'rebal' label)."""
        rt, _plane, _a, _b = _run(_crash_in_migration_section())
        assert any("rebal" in s.partition for s in rt.sections)
        assert rt.sections[-1].recovery.attempts == 2
