"""Unit tests for the data plane's rank stores and slice cache."""
import numpy as np
import pytest

from repro.data import MissingShardError, RankStore, SliceCache
from repro.data.store import _aid_of, aid_wire


class TestAidWire:
    def test_fixed_width(self):
        # Ids grow for the life of the process; wire size must not.
        assert len(aid_wire(0)) == 8
        assert len(aid_wire(1 << 40)) == 8

    def test_roundtrip(self):
        for aid in (0, 1, 127, 128, 1 << 33):
            assert _aid_of(aid_wire(aid)) == aid

    def test_accepts_int_and_memoryview(self):
        assert _aid_of(7) == 7
        assert _aid_of(memoryview(aid_wire(9))) == 9


class TestSliceCache:
    def test_miss_then_hit(self):
        c = SliceCache(max_bytes=1000)
        assert c.lookup(1, 0, 10) is None
        c.put(1, 0, 10, 80)
        assert c.lookup(1, 0, 10) == (1, 0, 10)
        assert (c.hits, c.misses) == (1, 1)

    def test_containment_is_a_hit(self):
        c = SliceCache(max_bytes=1000)
        c.put(1, 0, 100, 800)
        assert c.lookup(1, 25, 75) == (1, 0, 100)
        assert c.lookup(1, 50, 150) is None  # overhang is a miss
        assert c.lookup(2, 25, 75) is None  # different array is a miss

    def test_byte_bound_evicts_lru(self):
        c = SliceCache(max_bytes=100)
        c.put(1, 0, 10, 60)
        c.put(1, 10, 20, 60)  # over budget: (1, 0, 10) goes
        assert c.lookup(1, 0, 10) is None
        assert c.lookup(1, 10, 20) is not None
        assert c.evictions == 1
        assert c.bytes_used == 60

    def test_hit_refreshes_lru_position(self):
        c = SliceCache(max_bytes=120)
        c.put(1, 0, 10, 60)
        c.put(1, 10, 20, 60)
        c.lookup(1, 0, 10)  # refresh the older entry
        c.put(1, 20, 30, 60)  # now (1, 10, 20) is the LRU victim
        assert c.lookup(1, 0, 10) is not None
        assert c.lookup(1, 10, 20) is None

    def test_oversized_entry_still_admitted(self):
        c = SliceCache(max_bytes=50)
        c.put(1, 0, 10, 40)
        evicted = c.put(1, 0, 1000, 9999)  # bigger than the whole budget
        assert (1, 0, 10) in evicted
        assert c.lookup(1, 0, 1000) is not None
        assert len(c) == 1

    def test_invalidate_one_array(self):
        c = SliceCache(max_bytes=1000)
        c.put(1, 0, 10, 10)
        c.put(2, 0, 10, 10)
        assert c.invalidate(1) == 1
        assert c.lookup(2, 0, 10) is not None
        assert c.invalidate() == 1
        assert len(c) == 0


class TestRankStore:
    def _rows(self, lo, hi):
        return np.arange(lo, hi, dtype=np.float64).reshape(-1, 1) * [1.0, 10.0]

    def test_resident_view_is_zero_copy(self):
        s = RankStore(rank=1)
        s.apply([["resident", aid_wire(5), 10, 20, [(10, 20, self._rows(10, 20))]]])
        v = s.view(5, 12, 15)
        np.testing.assert_array_equal(v, self._rows(12, 15))
        assert v.base is not None  # a view, not a copy

    def test_missing_rows_raise(self):
        s = RankStore(rank=1)
        s.apply([["resident", aid_wire(5), 10, 20, [(10, 20, self._rows(10, 20))]]])
        with pytest.raises(MissingShardError):
            s.view(5, 5, 15)
        with pytest.raises(MissingShardError):
            s.view(6, 10, 12)

    def test_hull_growth_reuses_resident_rows(self):
        s = RankStore(rank=1)
        s.apply([["resident", aid_wire(5), 10, 20, [(10, 20, self._rows(10, 20))]]])
        # Grow to [5, 25) shipping only the missing edges.
        s.apply([["resident", aid_wire(5), 5, 25,
                  [(5, 10, self._rows(5, 10)), (20, 25, self._rows(20, 25))]]])
        np.testing.assert_array_equal(s.view(5, 5, 25), self._rows(5, 25))
        assert s.resident_bounds(5) == (5, 25)

    def test_cache_and_evict(self):
        s = RankStore(rank=2)
        s.apply([["cache", aid_wire(7), 30, 40, [(30, 40, self._rows(30, 40))]]])
        np.testing.assert_array_equal(s.view(7, 33, 37), self._rows(33, 37))
        s.apply([["evict", aid_wire(7), 30, 40]])
        with pytest.raises(MissingShardError):
            s.view(7, 33, 37)

    def test_assemble_from_nothing_raises(self):
        s = RankStore(rank=1)
        with pytest.raises(MissingShardError):
            s.apply([["resident", aid_wire(1), 0, 10, []]])

    def test_unknown_op_rejected(self):
        s = RankStore(rank=1)
        with pytest.raises(ValueError):
            s.apply([["teleport", aid_wire(1), 0, 10]])

    def test_clear(self):
        s = RankStore(rank=1)
        s.apply([["resident", aid_wire(5), 0, 10, [(0, 10, self._rows(0, 10))]]])
        s.clear()
        with pytest.raises(MissingShardError):
            s.view(5, 0, 10)
