"""The stencil/halo skeleton: ghost-cell exchange, dirty-halo reship,
and fault recovery, all differential against a sequential sweep."""
import numpy as np
import pytest

from repro.cluster import FaultPlan, MachineSpec, RankCrash, RankLoss
from repro.partition.halo import halo_bytes_bound
from repro.runtime import triolet_runtime
from repro.testing.invariants import check_plane, checking

pytestmark = [pytest.mark.views, pytest.mark.dataplane]

MACHINE = MachineSpec(nodes=4, cores_per_node=2)


def _relax(xpad):
    return 0.5 * (xpad[:-2] + xpad[2:])


def _relax_r2(xpad):
    return 0.25 * (xpad[:-4] + xpad[1:-3] + xpad[3:-1] + xpad[4:])


def _sequential(init, radius, kernel, iterations):
    x = np.array(init, copy=True)
    n = len(x)
    for _ in range(iterations):
        nxt = x.copy()
        nxt[radius:n - radius] = kernel(x)
        x = nxt
    return x


def _run(init, radius, kernel, iterations, machine=MACHINE, faults=None):
    with triolet_runtime(machine, faults=faults) as rt:
        h = rt.distribute(np.array(init, copy=True))
        rt.stencil(h, radius=radius, kernel=kernel, iterations=iterations)
        out = np.array(h.array, copy=True)
    return out, rt


def _stencil_sections(rt):
    return [s for s in rt.sections if s.kind == "stencil"]


INIT = (np.arange(512.0) * 7.0) % 23.0


class TestBitIdentity:
    def test_matches_sequential_sweep(self):
        want = _sequential(INIT, 1, _relax, 6)
        got, rt = _run(INIT, 1, _relax, 6)
        assert got.tobytes() == want.tobytes()
        check_plane(rt.plane)

    def test_radius_two(self):
        want = _sequential(INIT, 2, _relax_r2, 4)
        got, rt = _run(INIT, 2, _relax_r2, 4)
        assert got.tobytes() == want.tobytes()

    def test_single_rank_degenerate(self):
        machine = MachineSpec(nodes=1, cores_per_node=2)
        want = _sequential(INIT, 1, _relax, 3)
        got, _rt = _run(INIT, 1, _relax, 3, machine=machine)
        assert got.tobytes() == want.tobytes()

    def test_zero_iterations_is_identity(self):
        got, _rt = _run(INIT, 1, _relax, 0)
        assert got.tobytes() == INIT.tobytes()

    def test_checker_audits_every_iteration(self):
        with checking() as ck:
            _got, rt = _run(INIT, 1, _relax, 5)
        assert ck.sections == 5
        assert len(_stencil_sections(rt)) == 5


class TestHaloTraffic:
    def test_interior_never_reships_after_first_iteration(self):
        """The acceptance bar: from iteration 2 on, only halos travel --
        every later section plans zero placement/cache bytes."""
        _got, rt = _run(INIT, 1, _relax, 6)
        sections = _stencil_sections(rt)
        first, rest = sections[0], sections[1:]
        assert first.data_plane["input_bytes"] > 0
        for s in rest:
            assert s.data_plane["input_bytes"] == 0
            assert s.data_plane["halo_bytes"] > 0  # dirty halos only

    def test_halo_stream_conserves_and_respects_ceiling(self):
        _got, rt = _run(INIT, 2, _relax_r2, 5)
        nranks = MACHINE.nodes
        bound = halo_bytes_bound(2, nranks, INIT.itemsize)
        for s in _stencil_sections(rt):
            dp = s.data_plane
            assert dp["halo_requests"] == dp["halo_hits"] + dp["halo_refreshes"]
            assert dp["halo_bytes"] <= bound
        totals = rt.plane.totals
        assert totals["halo_requests"] == (
            totals["halo_hits"] + totals["halo_refreshes"]
        )

    def test_partition_string_names_the_halo(self):
        _got, rt = _run(INIT, 2, _relax_r2, 1)
        (s,) = _stencil_sections(rt)
        assert "halo r2" in s.partition


class TestRecovery:
    def test_rank_loss_mid_run_is_bit_identical(self):
        want = _sequential(INIT, 1, _relax, 8)
        plan = FaultPlan(faults=(RankLoss(rank=1, at=1e-6, section=3),))
        got, rt = _run(INIT, 1, _relax, 8, faults=plan)
        assert got.tobytes() == want.tobytes()
        rep = rt.recovery_report
        assert rep.rank_losses == 1
        assert rep.lineage_replays > 0
        assert rt.plane.shrinks == 1
        check_plane(rt.plane)

    def test_transient_crash_mid_run_is_bit_identical(self):
        want = _sequential(INIT, 1, _relax, 8)
        plan = FaultPlan(faults=(RankCrash(rank=2, at=1e-6, section=2),))
        got, rt = _run(INIT, 1, _relax, 8, faults=plan)
        assert got.tobytes() == want.tobytes()
        assert rt.recovery_report.reexecuted_chunks > 0
        assert rt.plane.shrinks == 0  # transient: no elastic shrink
        check_plane(rt.plane)

    def test_loss_then_steady_state_reships_nothing(self):
        """After the shrink absorbs the loss, later iterations return to
        halo-only traffic on the new, wider blocks."""
        plan = FaultPlan(faults=(RankLoss(rank=1, at=1e-6, section=2),))
        _got, rt = _run(INIT, 1, _relax, 8, faults=plan)
        clean_after = [
            s
            for s in _stencil_sections(rt)[3:]
            if s.recovery is None or s.recovery.attempts == 1
        ]
        assert clean_after, "no clean post-loss iterations recorded"
        for s in clean_after:
            assert s.data_plane["input_bytes"] == 0


class TestValidation:
    def test_radius_must_be_positive(self):
        with triolet_runtime(MACHINE) as rt:
            h = rt.distribute(np.arange(32.0))
            with pytest.raises(ValueError, match="radius"):
                rt.stencil(h, radius=0, kernel=_relax, iterations=1)

    def test_iterations_must_be_non_negative(self):
        with triolet_runtime(MACHINE) as rt:
            h = rt.distribute(np.arange(32.0))
            with pytest.raises(ValueError, match="iterations"):
                rt.stencil(h, radius=1, kernel=_relax, iterations=-1)

    def test_kernel_row_count_mismatch_rejected(self):
        def bad_kernel(xpad):
            return xpad  # returns padded width, not the writable window

        with triolet_runtime(MACHINE) as rt:
            h = rt.distribute(np.arange(64.0))
            with pytest.raises(ValueError, match="rows for a"):
                rt.stencil(h, radius=1, kernel=bad_kernel, iterations=1)
