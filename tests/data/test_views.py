"""Distributed view pipelines: lazy composition, NumPy-differential
values, and the placement guarantee -- the planner ships only the rows a
view actually touches, never the whole backing array."""
import numpy as np
import pytest

import repro.triolet as tri
from repro.cluster import MachineSpec
from repro.data.views import (
    segmented_view,
    slice_view,
    transpose_view,
    zip_view,
)
from repro.runtime import triolet_runtime
from repro.testing.invariants import check_plane, checking
from repro.testing.kernels import k_double, k_pair_sum, k_row_sum, k_square

pytestmark = [pytest.mark.views, pytest.mark.dataplane]

MACHINE = MachineSpec(nodes=4, cores_per_node=2)


class TestLocalViews:
    """Views over plain ndarrays -- no runtime, pure traversal."""

    def test_slice_matches_numpy(self):
        xs = np.arange(50.0)
        got = tri.build(tri.map(k_double, tri.par(slice_view(xs, 10, 35))))
        assert got.tobytes() == (2.0 * xs[10:35]).tobytes()

    def test_slice_of_slice_rebases(self):
        xs = np.arange(50.0)
        v = slice_view(slice_view(xs, 10, 40), 5, 20)
        got = tri.build(tri.par(v))
        assert got.tobytes() == xs[15:30].tobytes()

    def test_zip_truncates_to_shortest(self):
        a, b = np.arange(10.0), np.arange(100.0, 106.0)
        got = tri.build(tri.map(k_pair_sum, tri.par(zip_view(a, b))))
        assert got.tobytes() == (a[:6] + b).tobytes()

    def test_transpose_yields_columns(self):
        A = np.arange(24.0).reshape(6, 4)
        got = tri.build(tri.map(k_row_sum, tri.par(transpose_view(A))))
        assert got.tobytes() == A.sum(axis=0).tobytes()

    def test_segmented_yields_ragged_rows(self):
        xs = np.arange(20.0)
        offs = (0, 3, 3, 11, 20)
        got = [
            float(np.sum(seg))
            for seg in tri.collect_list(tri.par(segmented_view(xs, offs)))
        ]
        want = [float(np.sum(xs[a:b])) for a, b in zip(offs, offs[1:])]
        assert got == want

    def test_validation(self):
        xs = np.arange(10.0)
        with pytest.raises(ValueError, match="out of bounds"):
            slice_view(xs, 3, 11)
        with pytest.raises(ValueError, match="non-decreasing"):
            segmented_view(xs, (0, 5, 4, 10))
        with pytest.raises(ValueError, match="escape"):
            segmented_view(xs, (0, 99))
        with pytest.raises(TypeError, match="not another view"):
            transpose_view(slice_view(xs, 0, 5))


class TestDistributedViews:
    """The same pipelines over handles, bit-identical to the sequential
    path and audited by the invariant checker."""

    def test_slice_over_handle_matches_sequential(self):
        xs = np.arange(4096.0)
        seq = tri.sum(tri.map(k_square, tri.par(slice_view(xs, 100, 3100))))
        with checking():
            with triolet_runtime(MACHINE) as rt:
                h = rt.distribute(xs)
                par = tri.sum(
                    tri.map(k_square, tri.par(slice_view(h, 100, 3100)))
                )
        assert par == seq  # bit-identical scalar
        check_plane(rt.plane)

    def test_chunk_requirements_are_view_restricted(self):
        """The slice-extraction core of the tentpole: a chunk of a sliced
        handle requires exactly its rebased base interval -- never the
        whole array, never a replicated requirement."""
        from types import SimpleNamespace

        from repro.data.plane import chunk_requirements

        xs = np.arange(8192.0)
        with triolet_runtime(MACHINE) as rt:
            h = rt.distribute(xs)
            ix = slice_view(h, 1000, 1500).__triolet_idx__()
            # The driver carves the 500-row view extent, not the array.
            chunk = SimpleNamespace(idx=ix.slice(125, 250))
            reqs = chunk_requirements(chunk)
        assert reqs == {h.array_id: [1125, 1250, False]}

    def test_first_touch_ships_less_than_replication(self):
        """First use unions each requirement with the rank's layout shard
        (prefetch policy, so a later block partition lands resident), but
        the plan stays a partition-style placement -- replicating the
        array to every worker would ship ``(nranks - 1) * nbytes``."""
        xs = np.arange(8192.0)
        replicated = (MACHINE.nodes - 1) * xs.nbytes
        with triolet_runtime(MACHINE) as rt:
            h = rt.distribute(xs)
            tri.sum(tri.map(k_double, tri.par(slice_view(h, 1000, 1500))))
        assert 0 < rt.plane.totals["input_bytes"] < replicated
        assert rt.plane.totals["placements"] == MACHINE.nodes - 1
        check_plane(rt.plane)

    def test_later_disjoint_slice_ships_only_its_rows(self):
        """Steady state: once hulls exist, a new narrow slice outside
        them travels through the slice cache at its own width, not a
        re-placement of the shard."""
        xs = np.arange(8192.0)
        with triolet_runtime(MACHINE) as rt:
            h = rt.distribute(xs)
            tri.sum(tri.map(k_double, tri.par(slice_view(h, 1000, 1500))))
            before = rt.plane.totals["input_bytes"]
            tri.sum(tri.map(k_double, tri.par(slice_view(h, 5000, 5100))))
            delta = rt.plane.totals["input_bytes"] - before
        assert 0 < delta <= 100 * h.row_nbytes()
        assert rt.plane.totals["cache_misses"] > 0
        check_plane(rt.plane)

    def test_repeat_view_section_is_fully_resident(self):
        xs = np.arange(4096.0)
        with triolet_runtime(MACHINE) as rt:
            h = rt.distribute(xs)
            first = tri.sum(tri.par(slice_view(h, 256, 2304)))
            shipped = rt.plane.totals["input_bytes"]
            second = tri.sum(tri.par(slice_view(h, 256, 2304)))
        assert first == second
        assert rt.plane.totals["input_bytes"] == shipped  # zero re-ship
        assert rt.plane.totals["resident_hits"] > 0

    def test_zip_of_two_handles(self):
        a = np.arange(2000.0)
        b = np.arange(500.0, 2000.0)
        seq = tri.sum(tri.map(k_pair_sum, tri.par(zip_view(a, b))))
        with checking():
            with triolet_runtime(MACHINE) as rt:
                ha, hb = rt.distribute(a), rt.distribute(b)
                par = tri.sum(tri.map(k_pair_sum, tri.par(zip_view(ha, hb))))
        assert par == seq
        # The longer base's *requirement* stops at the zip truncation
        # point (the hull may still round up to the layout shard).
        ivs = zip_view(ha, hb).base_intervals()[ha.array_id]
        assert ivs == [(0, len(b))]
        check_plane(rt.plane)

    def test_transpose_over_handle(self):
        A = np.arange(600.0).reshape(100, 6)
        with triolet_runtime(MACHINE) as rt:
            h = rt.distribute(A)
            got = tri.build(tri.map(k_row_sum, tri.par(transpose_view(h))))
        assert got.tobytes() == A.sum(axis=0).tobytes()
        check_plane(rt.plane)

    def test_segmented_over_handle(self):
        xs = np.arange(300.0)
        offs = tuple(range(0, 301, 25))
        with triolet_runtime(MACHINE) as rt:
            h = rt.distribute(xs)
            got = tri.build(
                tri.map(k_row_sum, tri.par(segmented_view(h, offs)))
            )
        want = np.array(
            [float(np.sum(xs[a:b])) for a, b in zip(offs, offs[1:])]
        )
        assert got.tobytes() == want.tobytes()
        check_plane(rt.plane)

    def test_segmented_requires_only_rows_inside_the_offsets(self):
        """Offsets that start late and stop early restrict the
        requirement to ``[offsets[0], offsets[-1])``."""
        from types import SimpleNamespace

        from repro.data.plane import chunk_requirements

        xs = np.arange(1000.0)
        offs = (400, 500, 600)
        with triolet_runtime(MACHINE) as rt:
            h = rt.distribute(xs)
            got = tri.sum(
                tri.map(k_row_sum, tri.par(segmented_view(h, offs)))
            )
            ix = segmented_view(h, offs).__triolet_idx__()
            reqs = chunk_requirements(SimpleNamespace(idx=ix))
        assert got == float(np.sum(xs[400:600]))
        assert reqs == {h.array_id: [400, 600, False]}
        check_plane(rt.plane)


class TestBaseIntervals:
    def test_zip_merges_shared_base(self):
        xs = np.arange(40.0)
        v = zip_view(slice_view(xs, 0, 20), slice_view(xs, 15, 35))
        per_base = v.base_intervals()
        assert len(per_base) == 1
        (merged,) = per_base.values()
        # Both legs are 20 long, so the zip is 20 long and the touched
        # rows merge into one interval across the overlap.
        assert merged == [(0, 35)]

    def test_disjoint_slices_stay_disjoint(self):
        xs = np.arange(40.0)
        v = zip_view(slice_view(xs, 0, 5), slice_view(xs, 30, 35))
        (merged,) = v.base_intervals().values()
        assert merged == [(0, 5), (30, 35)]
