"""Collectives under a byte-capped network: fail hard, or fragment.

Without a recovery policy a collective whose point-to-point messages
exceed ``max_message_bytes`` aborts with :class:`BufferOverflowError`
(the Eden posture, Fig. 5).  With the Triolet recovery policy installed
the oversized sends are fragmented into limit-sized pieces and every
collective still produces exactly the right answer.
"""
import numpy as np
import pytest

from repro.cluster import (
    BufferOverflowError,
    MachineSpec,
    RuntimeLimits,
    run_spmd,
)
from repro.runtime.recovery import RecoveryPolicy

MACHINE = MachineSpec(nodes=8, cores_per_node=1)
# 1000 float64 rows are ~8 kB on the wire; cap below even the smallest
# per-rank chunk (1000/8 rows = 1 kB) so every collective overflows.
TIGHT = RuntimeLimits(max_message_bytes=900)
RECOVER = RecoveryPolicy()
NROWS = 1000


def bcast_fn(comm):
    obj = np.arange(float(NROWS)) if comm.rank == 0 else None
    return float(comm.bcast(obj, root=0).sum())


def reduce_fn(comm):
    local = np.full(NROWS, float(comm.rank + 1))
    out = comm.reduce(local, op=lambda a, b: a + b, root=0)
    return None if out is None else float(out.sum())


def scatterv_fn(comm):
    counts = [NROWS // comm.size + (1 if i < NROWS % comm.size else 0)
              for i in range(comm.size)]
    arr = np.arange(float(NROWS)) if comm.rank == 0 else None
    return float(comm.scatterv(arr, counts, root=0).sum())


def gatherv_fn(comm):
    local = np.full(NROWS // comm.size, float(comm.rank))
    out = comm.gatherv(local, root=0)
    return None if out is None else float(out.sum())


def alltoall_fn(comm):
    chunks = [np.full(NROWS // comm.size, float(comm.rank * 100 + i))
              for i in range(comm.size)]
    out = comm.alltoall(chunks)
    return float(sum(c.sum() for c in out))


COLLECTIVES = {
    "bcast": bcast_fn,
    "reduce": reduce_fn,
    "scatterv": scatterv_fn,
    "gatherv": gatherv_fn,
    "alltoall": alltoall_fn,
}


def expected(name, size):
    res = run_spmd(MACHINE, COLLECTIVES[name], nranks=size)
    return res.results


@pytest.mark.parametrize("name", sorted(COLLECTIVES))
@pytest.mark.parametrize("size", [2, 4, 8])
class TestCappedCollectives:
    def test_fails_without_recovery(self, name, size):
        with pytest.raises(BufferOverflowError):
            run_spmd(
                MACHINE,
                COLLECTIVES[name],
                nranks=size,
                limits=TIGHT,
                real_timeout=15.0,
            )

    def test_fragments_with_recovery(self, name, size):
        res = run_spmd(
            MACHINE,
            COLLECTIVES[name],
            nranks=size,
            limits=TIGHT,
            recovery=RECOVER,
        )
        assert res.results == expected(name, size)
        assert res.metrics.messages_fragmented >= 1
        assert res.metrics.fragments_sent > res.metrics.messages_fragmented
        assert res.recovery is not None
        assert res.recovery.rejected_messages == res.metrics.messages_rejected


class TestFragmentationAccounting:
    def test_rejection_traced_before_fragmenting(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(NROWS), dest=1)
                return None
            return float(comm.Recv(source=0).sum())

        res = run_spmd(
            MACHINE, main, nranks=2, limits=TIGHT,
            recovery=RECOVER, trace=True,
        )
        assert res.results[1] == 0.0
        rejected = res.trace.of_kind("message_rejected")
        fragmented = res.trace.of_kind("fragmented")
        assert len(rejected) == 1
        assert len(fragmented) == 1
        assert res.metrics.messages_rejected == 1

    def test_fragmented_send_costs_more_virtual_time(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(NROWS), dest=1)
                return None
            return float(comm.Recv(source=0).sum())

        free = run_spmd(MACHINE, main, nranks=2)
        frag = run_spmd(
            MACHINE, main, nranks=2, limits=TIGHT, recovery=RECOVER
        )
        # graceful degradation: correct answer, higher per-fragment
        # overhead than the single unconstrained send
        assert frag.results == free.results
        assert frag.makespan > free.makespan

    def test_fragment_policy_disabled_still_fails(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(NROWS), dest=1)
            else:
                comm.Recv(source=0)

        no_frag = RecoveryPolicy(fragment=False)
        with pytest.raises(BufferOverflowError):
            run_spmd(
                MACHINE, main, nranks=2, limits=TIGHT,
                recovery=no_frag, real_timeout=15.0,
            )
