"""Tests for the distributed algorithms (sample sort, unique counts)."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import MachineSpec, run_spmd
from repro.cluster.algorithms import distributed_unique_counts, sample_sort

MACHINE = MachineSpec(nodes=8, cores_per_node=2)


def _run_sort(per_rank_data: list[np.ndarray]):
    nranks = len(per_rank_data)

    def main(comm):
        return sample_sort(comm, per_rank_data[comm.rank])

    res = run_spmd(MACHINE, main, nranks=nranks)
    return res.results


class TestSampleSort:
    def test_globally_sorted(self):
        rng = np.random.default_rng(0)
        data = [rng.standard_normal(100) for _ in range(4)]
        pieces = _run_sort(data)
        glued = np.concatenate(pieces)
        expected = np.sort(np.concatenate(data))
        np.testing.assert_array_equal(glued, expected)

    def test_single_rank(self):
        pieces = _run_sort([np.array([3.0, 1.0, 2.0])])
        np.testing.assert_array_equal(pieces[0], [1.0, 2.0, 3.0])

    def test_uneven_inputs(self):
        data = [np.arange(10.0)[::-1], np.array([]), np.array([5.5]), np.arange(3.0)]
        pieces = _run_sort(data)
        glued = np.concatenate([p for p in pieces if p.size])
        expected = np.sort(np.concatenate(data))
        np.testing.assert_array_equal(glued, expected)

    def test_duplicates_preserved(self):
        data = [np.array([1.0, 1.0, 2.0]), np.array([1.0, 2.0, 2.0])]
        pieces = _run_sort(data)
        glued = np.concatenate(pieces)
        np.testing.assert_array_equal(glued, [1.0, 1.0, 1.0, 2.0, 2.0, 2.0])

    def test_pieces_are_ordered_by_rank(self):
        rng = np.random.default_rng(1)
        data = [rng.uniform(0, 100, 64) for _ in range(8)]
        pieces = _run_sort(data)
        for a, b in zip(pieces, pieces[1:]):
            if a.size and b.size:
                assert a[-1] <= b[0]

    def test_rejects_2d(self):
        def main(comm):
            sample_sort(comm, np.zeros((2, 2)))

        with pytest.raises(ValueError):
            run_spmd(MACHINE, main, nranks=2)

    @given(
        st.lists(
            st.lists(st.integers(-50, 50), max_size=30),
            min_size=2,
            max_size=6,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_property_matches_numpy(self, chunks):
        data = [np.array(c, dtype=np.float64) for c in chunks]
        pieces = _run_sort(data)
        glued = np.concatenate([p for p in pieces if p.size] or [np.array([])])
        expected = np.sort(np.concatenate(data)) if any(len(c) for c in chunks) else np.array([])
        np.testing.assert_array_equal(glued, expected)


class TestUniqueCounts:
    def test_counts_merge_globally(self):
        data = [np.array([1, 2, 2]), np.array([2, 3]), np.array([1])]

        def main(comm):
            return distributed_unique_counts(comm, data[comm.rank])

        res = run_spmd(MACHINE, main, nranks=3)
        expected = {1: 2, 2: 3, 3: 1}
        assert all(r == expected for r in res.results)

    def test_empty_contribution(self):
        data = [np.array([7]), np.array([], dtype=np.int64)]

        def main(comm):
            return distributed_unique_counts(comm, data[comm.rank])

        res = run_spmd(MACHINE, main, nranks=2)
        assert res.results[0] == {7: 1}
