"""Failure injection: the simulated cluster under misbehaving programs."""
import numpy as np
import pytest

from repro.cluster import (
    BufferOverflowError,
    MachineSpec,
    RankFailureGroup,
    RankFailureInfo,
    RuntimeLimits,
    SimDeadlockError,
    run_spmd,
)

MACHINE = MachineSpec(nodes=4, cores_per_node=2)


class TestRankFailures:
    def test_exception_type_preserved(self):
        class AppError(RuntimeError):
            pass

        def main(comm):
            if comm.rank == 2:
                raise AppError("rank 2 exploded")
            comm.barrier()

        with pytest.raises(AppError, match="rank 2 exploded"):
            run_spmd(MACHINE, main, nranks=4)

    def test_failure_mid_collective_unblocks_everyone(self):
        """Ranks blocked in a reduce must not hang when a peer dies."""

        def main(comm):
            if comm.rank == 1:
                raise ValueError("died before contributing")
            return comm.allreduce(comm.rank, op=lambda a, b: a + b)

        with pytest.raises(ValueError):
            run_spmd(MACHINE, main, nranks=4, real_timeout=10.0)

    def test_lowest_failing_rank_wins(self):
        def main(comm):
            raise RuntimeError(f"boom {comm.rank}")

        with pytest.raises(RuntimeError, match="boom 0"):
            run_spmd(MACHINE, main, nranks=4)

    def test_failure_after_success_of_others(self):
        """A late failure still fails the run (no partial results leak)."""

        def main(comm):
            token = comm.bcast("ok" if comm.rank == 0 else None)
            if comm.rank == comm.size - 1:
                raise RuntimeError("late failure")
            return token

        with pytest.raises(RuntimeError, match="late failure"):
            run_spmd(MACHINE, main, nranks=4)

    def test_exception_annotated_with_failure_group(self):
        """The raised exception carries every failing rank + virtual time."""

        def main(comm):
            comm.compute(1e-3 * (comm.rank + 1))
            if comm.rank in (1, 3):
                raise RuntimeError(f"boom {comm.rank}")
            comm.barrier()

        with pytest.raises(RuntimeError, match="boom 1") as exc_info:
            run_spmd(MACHINE, main, nranks=4, real_timeout=10.0)
        exc = exc_info.value
        infos = exc.rank_failures
        assert [i.rank for i in infos] == [1, 3]
        assert all(isinstance(i, RankFailureInfo) for i in infos)
        assert all(i.vtime > 0.0 for i in infos)
        assert isinstance(exc.__cause__, RankFailureGroup)
        assert len(exc.__cause__.failures) == 2
        # the add_note() annotation names the failing ranks
        assert any("run_spmd" in n for n in getattr(exc, "__notes__", []))

    def test_failed_ranks_traced(self):
        def main(comm):
            if comm.rank == 2:
                raise RuntimeError("traced failure")
            comm.barrier()

        with pytest.raises(RuntimeError):
            run_spmd(MACHINE, main, nranks=4, real_timeout=10.0, trace=True)


class TestDeadlocks:
    def test_recv_with_no_sender_times_out(self):
        def main(comm):
            if comm.rank == 1:
                comm.recv(source=0, tag=42)  # nobody sends tag 42

        with pytest.raises(SimDeadlockError):
            run_spmd(MACHINE, main, nranks=2, real_timeout=0.3)

    def test_cyclic_wait_times_out(self):
        def main(comm):
            # Everyone receives before sending: a classic deadlock.
            peer = (comm.rank + 1) % comm.size
            comm.recv(source=peer, tag=7)
            comm.send("x", peer, tag=7)

        with pytest.raises(SimDeadlockError):
            run_spmd(MACHINE, main, nranks=2, real_timeout=0.3)


class TestBufferOverflowPropagation:
    def test_overflow_aborts_blocked_peers(self):
        limits = RuntimeLimits(max_message_bytes=100)

        def main(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(1000), dest=1)  # 8000 B > 100 B limit
            else:
                comm.Recv(source=0)  # would block forever without abort

        with pytest.raises(BufferOverflowError):
            run_spmd(MACHINE, main, nranks=2, limits=limits, real_timeout=10.0)

    def test_overflow_reports_endpoints(self):
        limits = RuntimeLimits(max_message_bytes=100)

        def main(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(1000), dest=1)
            else:
                comm.Recv(source=0)

        with pytest.raises(BufferOverflowError) as exc_info:
            run_spmd(MACHINE, main, nranks=2, limits=limits, real_timeout=10.0)
        assert exc_info.value.src == 0
        assert exc_info.value.dst == 1
        assert exc_info.value.nbytes > exc_info.value.limit

    def test_intra_node_exempt_when_configured(self):
        limits = RuntimeLimits(max_message_bytes=100, inter_node_only=True)

        def main(comm):
            # ranks 0 and 1 share a node (2 ranks per node)
            if comm.rank == 0:
                comm.Send(np.zeros(1000), dest=1)
                return None
            return comm.Recv(source=0).sum()

        res = run_spmd(
            MACHINE, main, nranks=2, ranks_per_node=2, limits=limits
        )
        assert res.results[1] == 0.0


class TestRecovery:
    def test_new_run_after_failure_is_clean(self):
        """A failed run must not poison subsequent runs."""

        def bad(comm):
            raise RuntimeError("bad")

        def good(comm):
            return comm.allreduce(1, op=lambda a, b: a + b)

        with pytest.raises(RuntimeError):
            run_spmd(MACHINE, bad, nranks=4)
        res = run_spmd(MACHINE, good, nranks=4)
        assert res.results == [4, 4, 4, 4]

    def test_runtime_survives_failed_section(self):
        import repro.triolet as tri
        from repro.runtime import triolet_runtime

        def boom(x):
            raise ValueError("element function failed")

        xs = np.arange(100.0)
        with triolet_runtime(MACHINE) as rt:
            with pytest.raises(ValueError, match="element function failed"):
                tri.sum(tri.map(boom, tri.par(xs)))
            # The runtime is still usable for the next section.
            assert tri.sum(tri.par(xs)) == pytest.approx(4950.0)
