"""Chaos property test: collectives under byte caps *and* send faults.

:mod:`tests.cluster.test_collectives_limits` pins the byte-capped
fragmentation behaviour on fixed shapes; this suite turns the same
guarantee into a seed-driven property and stacks a transient send fault
on top.  For any seed, a randomly chosen collective over random-sized
payloads, run with a message cap tight enough to force fragmentation
while a :class:`SendFault` eats sends, must still produce results
bit-identical to the unconstrained fault-free run -- and the metrics
must show both mechanisms actually fired (fragmented messages, retried
sends).

Marked ``chaos`` so CI sweeps it across its seed matrix alongside the
app-level storm in :mod:`tests.test_chaos`.
"""
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    FaultPlan,
    MachineSpec,
    RuntimeLimits,
    SendFault,
    run_spmd,
)
from repro.runtime.recovery import RecoveryPolicy

pytestmark = pytest.mark.chaos

MACHINE = MachineSpec(nodes=8, cores_per_node=1)


def _bcast(nrows):
    def fn(comm):
        obj = np.arange(float(nrows)) if comm.rank == 0 else None
        return float(comm.bcast(obj, root=0).sum())
    return fn


def _reduce(nrows):
    def fn(comm):
        local = np.full(nrows, float(comm.rank + 1))
        out = comm.reduce(local, op=lambda a, b: a + b, root=0)
        return None if out is None else float(out.sum())
    return fn


def _scatterv(nrows):
    def fn(comm):
        counts = [nrows // comm.size + (1 if i < nrows % comm.size else 0)
                  for i in range(comm.size)]
        arr = np.arange(float(nrows)) if comm.rank == 0 else None
        return float(comm.scatterv(arr, counts, root=0).sum())
    return fn


def _gatherv(nrows):
    def fn(comm):
        local = np.full(nrows // comm.size + comm.rank, float(comm.rank))
        out = comm.gatherv(local, root=0)
        return None if out is None else float(out.sum())
    return fn


# (name, factory, guaranteed-sender) -- the faulted rank must be one
# that actually sends in that collective, or the fault never fires.
COLLECTIVES = [("bcast", _bcast, "root"), ("reduce", _reduce, "leaf"),
               ("scatterv", _scatterv, "root"), ("gatherv", _gatherv, "leaf")]


def _case(seed: int):
    """Deterministically derive (collective, size, payload, faults)."""
    rng = random.Random(seed * 9_176_941 + 13)
    name, make, sender = COLLECTIVES[rng.randrange(len(COLLECTIVES))]
    size = rng.choice([2, 4, 8])
    nrows = rng.randrange(400, 2000)
    # Cap well below the smallest per-rank chunk so every collective
    # fragments; fault 1-3 sends from a rank that definitely sends so
    # the retry path fires too.
    limits = RuntimeLimits(max_message_bytes=rng.randrange(300, 1200))
    src = 0 if sender == "root" else rng.randrange(1, size)
    faults = FaultPlan(faults=(
        SendFault(src=src, times=rng.randrange(1, 4)),
    ))
    return name, make(nrows), size, limits, faults


@settings(max_examples=12, derandomize=True)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_capped_faulted_collective_matches_clean_run(seed):
    name, fn, size, limits, faults = _case(seed)
    clean = run_spmd(MACHINE, fn, nranks=size)
    chaotic = run_spmd(
        MACHINE, fn, nranks=size,
        limits=limits, faults=faults, recovery=RecoveryPolicy(),
        real_timeout=30.0,
    )
    assert chaotic.results == clean.results, (name, seed)
    assert chaotic.metrics.messages_fragmented >= 1
    assert chaotic.metrics.fragments_sent > chaotic.metrics.messages_fragmented
    assert chaotic.metrics.send_retries >= 1


@settings(max_examples=6, derandomize=True)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_chaotic_run_is_deterministic_per_seed(seed):
    name, fn, size, limits, faults = _case(seed)
    a = run_spmd(MACHINE, fn, nranks=size, limits=limits,
                 faults=faults, recovery=RecoveryPolicy())
    faults.reset()
    b = run_spmd(MACHINE, fn, nranks=size, limits=limits,
                 faults=faults, recovery=RecoveryPolicy())
    assert a.results == b.results, (name, seed)
    assert a.makespan == b.makespan
