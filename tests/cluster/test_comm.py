"""Point-to-point communication tests on the simulated cluster."""
import numpy as np
import pytest

from repro.cluster import (
    BufferOverflowError,
    MachineSpec,
    RuntimeLimits,
    run_spmd,
)
from repro.cluster.machine import NetworkModel

SMALL = MachineSpec(nodes=4, cores_per_node=2)


class TestSendRecv:
    def test_object_roundtrip(self):
        def main(comm):
            if comm.rank == 0:
                comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        res = run_spmd(SMALL, main, nranks=2)
        assert res.results[1] == {"a": 7, "b": 3.14}

    def test_array_buffer_roundtrip(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.arange(100, dtype=np.float64), dest=1)
                return None
            return comm.Recv(source=0)

        res = run_spmd(SMALL, main, nranks=2)
        np.testing.assert_array_equal(res.results[1], np.arange(100.0))

    def test_buffer_recv_is_private_copy(self):
        src = np.arange(10.0)

        def main(comm):
            if comm.rank == 0:
                comm.Send(src, dest=1)
                return None
            got = comm.Recv(source=0)
            got[0] = -1.0
            return got[0]

        run_spmd(SMALL, main, nranks=2)
        assert src[0] == 0.0

    def test_messages_not_overtaking_same_tag(self):
        def main(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, dest=1, tag=3)
                return None
            return [comm.recv(source=0, tag=3) for _ in range(5)]

        res = run_spmd(SMALL, main, nranks=2)
        assert res.results[1] == [0, 1, 2, 3, 4]

    def test_tags_demultiplex(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("tag2", dest=1, tag=2)
                comm.send("tag1", dest=1, tag=1)
                return None
            # Receive in the opposite order of sending.
            a = comm.recv(source=0, tag=1)
            b = comm.recv(source=0, tag=2)
            return (a, b)

        res = run_spmd(SMALL, main, nranks=2)
        assert res.results[1] == ("tag1", "tag2")

    def test_bad_dest_raises(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, dest=99)

        with pytest.raises(ValueError):
            run_spmd(SMALL, main, nranks=2)


class TestVirtualTime:
    def test_compute_advances_only_local_clock(self):
        def main(comm):
            if comm.rank == 0:
                comm.compute(5.0)
            return comm.clock.now

        res = run_spmd(SMALL, main, nranks=2)
        assert res.results[0] == pytest.approx(5.0)
        assert res.results[1] == pytest.approx(0.0)
        assert res.makespan == pytest.approx(5.0)

    def test_recv_waits_for_sender(self):
        def main(comm):
            if comm.rank == 0:
                comm.compute(1.0)
                comm.send("x", dest=1)
                return comm.clock.now
            comm.recv(source=0)
            return comm.clock.now

        res = run_spmd(SMALL, main, nranks=2)
        # Receiver finishes after the sender's 1s of compute plus latency.
        assert res.results[1] > 1.0
        assert res.results[1] >= res.results[0]

    def test_determinism_across_runs(self):
        def main(comm):
            token = comm.rank
            for _ in range(3):
                comm.send(token, dest=(comm.rank + 1) % comm.size, tag=7)
                token = comm.recv(source=(comm.rank - 1) % comm.size, tag=7)
            comm.compute(0.001 * comm.rank)
            return comm.clock.now

        r1 = run_spmd(SMALL, main, nranks=4)
        r2 = run_spmd(SMALL, main, nranks=4)
        assert r1.final_clocks == r2.final_clocks
        assert r1.makespan == r2.makespan

    def test_bigger_message_costs_more_time(self):
        def main(nbytes, comm):
            if comm.rank == 0:
                comm.Send(np.zeros(nbytes // 8), dest=1)
                return None
            comm.Recv(source=0)
            return comm.clock.now

        small = run_spmd(SMALL, lambda c: main(8_000, c), nranks=2)
        large = run_spmd(SMALL, lambda c: main(8_000_000, c), nranks=2)
        assert large.results[1] > small.results[1]

    def test_intra_node_cheaper_than_inter_node(self):
        machine = MachineSpec(nodes=2, cores_per_node=2)

        def main(peer, comm):
            arr = np.zeros(100_000)
            if comm.rank == 0:
                comm.Send(arr, dest=peer)
                return None
            if comm.rank == peer:
                comm.Recv(source=0)
                return comm.clock.now
            return None

        # ranks 0,1 on node 0; ranks 2,3 on node 1 (2 ranks per node)
        intra = run_spmd(machine, lambda c: main(1, c), nranks=4, ranks_per_node=2)
        inter = run_spmd(machine, lambda c: main(2, c), nranks=4, ranks_per_node=2)
        assert intra.results[1] < inter.results[2]


class TestLimitsAndErrors:
    def test_buffer_overflow_raised(self):
        limits = RuntimeLimits(max_message_bytes=1000)

        def main(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(10_000), dest=1)
            else:
                comm.Recv(source=0)

        with pytest.raises(BufferOverflowError):
            run_spmd(SMALL, main, nranks=2, limits=limits)

    def test_rank_exception_propagates(self):
        def main(comm):
            if comm.rank == 1:
                raise RuntimeError("boom on rank 1")
            comm.recv(source=1)  # would otherwise block forever

        with pytest.raises(RuntimeError, match="boom on rank 1"):
            run_spmd(SMALL, main, nranks=2)

    def test_too_many_ranks_for_machine(self):
        def main(comm):
            return None

        with pytest.raises(ValueError):
            run_spmd(MachineSpec(nodes=2, cores_per_node=2), main, nranks=5)


class TestMetrics:
    def test_bytes_counted(self):
        payload = np.zeros(1000)  # 8000 raw bytes

        def main(comm):
            if comm.rank == 0:
                comm.Send(payload, dest=1)
            else:
                comm.Recv(source=0)

        res = run_spmd(SMALL, main, nranks=2)
        assert res.metrics.per_rank[0].bytes_sent >= 8000
        assert res.metrics.per_rank[1].bytes_received >= 8000
        assert res.metrics.messages_sent == 1

    def test_alloc_cost_hook(self):
        def main(comm):
            comm.alloc(1_000_000)
            return comm.clock.now

        res = run_spmd(
            SMALL, main, nranks=1, alloc_cost=lambda nbytes: nbytes * 1e-9
        )
        assert res.results[0] == pytest.approx(1e-3)
        assert res.metrics.per_rank[0].gc_time == pytest.approx(1e-3)
        assert res.metrics.alloc_bytes == 1_000_000


class TestMachineSpec:
    def test_paper_machine_shape(self):
        from repro.cluster.machine import PAPER_MACHINE

        assert PAPER_MACHINE.total_cores == 128

    def test_link_selection(self):
        m = MachineSpec(nodes=2, cores_per_node=2)
        assert m.link(0, 0) is m.shm
        assert m.link(0, 1) is m.net

    def test_scaled_preserves_constants(self):
        m = MachineSpec(nodes=8, cores_per_node=16, net=NetworkModel(latency=1.0))
        m2 = m.scaled(nodes=2)
        assert m2.nodes == 2 and m2.cores_per_node == 16
        assert m2.net.latency == 1.0

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec(nodes=0)
