"""LocalTransport specifics: process isolation, shared-memory shipping,
rank-local state merging, and feature gating.

These tests are POSIX-only in practice (fork start method) and skip as a
module where LocalTransport is unavailable.
"""
import numpy as np
import pytest

from repro.cluster import MachineSpec, TransportUnavailable, run_spmd
from repro.cluster.faults import FaultPlan, RankCrash
from repro.cluster.transport import (
    LocalTransport,
    _shm_read,
    _shm_write,
    available_transports,
    rank_extras,
)
from repro.core import meter
from repro.serial import copy_stats, register_function
import repro.triolet as tri

pytestmark = pytest.mark.transport

if "local" not in available_transports(nranks=2):
    pytest.skip("LocalTransport unavailable (no fork)", allow_module_level=True)


def machine(nodes: int = 2) -> MachineSpec:
    return MachineSpec(nodes=nodes, cores_per_node=1, transport="local")


class TestProcessIsolation:
    def test_ranks_cannot_observe_each_others_meter(self):
        """Rank 0 tallies into a driver-heap meter; rank 1 -- in its own
        forked address space -- must not see it, and the parent must not
        see either mutation."""
        shared = meter.CostMeter()

        def rank_fn(comm):
            if comm.rank == 0:
                shared.visits += 7
            comm.barrier()  # rank 0's write precedes rank 1's read
            return shared.visits

        res = run_spmd(machine(), rank_fn, nranks=2)
        assert res.results[0] == 7  # own write visible to itself
        assert res.results[1] == 0  # peer's write invisible
        assert shared.visits == 0  # nothing leaks back to the driver

    def test_installed_meter_is_rank_private(self):
        """A meter installed inside one rank collects only that rank's
        tallies (the satellite's meter-state isolation contract)."""

        def rank_fn(comm):
            with meter.metered() as m:
                meter.tally_visits(10 * (comm.rank + 1))
                comm.barrier()
            return m.visits

        res = run_spmd(machine(), rank_fn, nranks=2)
        assert res.results == [10, 20]

    def test_rank_extras_travel_back(self):
        def rank_fn(comm):
            ext = rank_extras()
            assert ext is not None
            ext["mark"] = comm.rank * 2 + 1
            return None

        res = run_spmd(machine(), rank_fn, nranks=2)
        assert [e["mark"] for e in res.extras] == [1, 3]


class TestSharedMemory:
    def test_shm_segment_round_trip(self):
        arr = np.arange(1024.0).reshape(32, 32)
        ref = _shm_write(arr)
        out = _shm_read(ref)
        assert out.tobytes() == arr.tobytes()
        assert out.dtype == arr.dtype and out.shape == arr.shape

    def test_shm_write_compacts_noncontiguous(self):
        arr = np.arange(64.0).reshape(8, 8).T
        assert not arr.flags.c_contiguous
        before = copy_stats()["noncontiguous_compacted"]
        ref = _shm_write(arr)
        assert copy_stats()["noncontiguous_compacted"] == before + 1
        assert _shm_read(ref).tobytes() == np.ascontiguousarray(arr).tobytes()

    def test_forced_shm_path_matches_queue_path(self):
        """With the threshold forced to 1 byte every buffer send rides a
        shared-memory segment; payloads must be unchanged."""
        arr = np.linspace(0.0, 1.0, 257)

        def rank_fn(comm):
            if comm.rank == 0:
                comm.Send(arr, 1)
                return None
            return comm.Recv(0).tobytes()

        res = run_spmd(
            machine(), rank_fn, nranks=2,
            transport=LocalTransport(shm_min_bytes=1),
        )
        assert res.results[1] == arr.tobytes()


class TestFeatureGates:
    def test_fault_plans_are_sim_only(self):
        plan = FaultPlan([RankCrash(rank=1, at=0.0)])

        def rank_fn(comm):
            return comm.rank

        with pytest.raises(TransportUnavailable, match="sim-only"):
            run_spmd(machine(), rank_fn, nranks=2, faults=plan)

    def test_unpicklable_error_is_wrapped(self):
        """An exception that cannot cross the process boundary arrives as
        a RuntimeError carrying its type name and message."""

        class Boom(Exception):  # local class: unpicklable in the parent
            pass

        def rank_fn(comm):
            if comm.rank == 1:
                raise Boom("socket on fire")
            return comm.rank

        with pytest.raises(RuntimeError, match="Boom: socket on fire"):
            run_spmd(machine(), rank_fn, nranks=2, real_timeout=20.0)


@register_function
def _double(v):
    return 2.0 * v


class TestDriverStateMerging:
    def test_second_section_ships_zero_input_bytes(self):
        """The parent-side mirror of worker-store ops must keep resident
        placement accurate across forks: the second compatible section
        over the same handle ships no input rows."""
        from repro.runtime import triolet_runtime
        from repro.serial import closure

        data = np.arange(512.0)
        with triolet_runtime(machine()) as rt:
            h = rt.distribute(data)
            s1 = tri.sum(tri.map(closure(_double), tri.par(h)))
            first = rt.last_section.data_plane
            s2 = tri.sum(tri.map(closure(_double), tri.par(h)))
            second = rt.last_section.data_plane
        assert s1 == s2 == 2.0 * data.sum()
        assert first["input_bytes"] > 0
        assert second["input_bytes"] == 0
        assert second["resident_hits"] > 0

    def test_meter_and_makespan_match_sim(self):
        """Section meters merged from rank extras equal the sim's direct
        merge, and the virtual makespan is transport-invariant."""
        from repro.runtime import triolet_runtime
        from repro.serial import closure

        data = np.arange(4096.0)

        def run(transport):
            m = MachineSpec(nodes=2, cores_per_node=1, transport=transport)
            with triolet_runtime(m) as rt:
                h = rt.distribute(data)
                v = tri.sum(tri.map(closure(_double), tri.par(h)))
            return v, rt.meter_total, rt.elapsed, rt.last_section.wall_seconds

        from repro.bench import reset_run_state

        reset_run_state()
        v_sim, m_sim, t_sim, w_sim = run("sim")
        reset_run_state()
        v_loc, m_loc, t_loc, w_loc = run("local")
        assert v_loc == v_sim
        assert m_loc == m_sim
        assert t_loc == t_sim
        assert w_sim == 0.0  # sim sections never report wall time
        assert w_loc > 0.0  # real transports always do
