"""Deterministic fault injection at the cluster layer (no recovery)."""
import numpy as np
import pytest

from repro.cluster import (
    DelaySpike,
    FaultPlan,
    MachineSpec,
    RankCrash,
    RankFailure,
    RankFailureGroup,
    RankFailureInfo,
    SendFault,
    SlowNode,
    TransientSendError,
    run_spmd,
)

MACHINE = MachineSpec(nodes=4, cores_per_node=2)


def ping(comm):
    """Rank 0 sends to 1, everyone reduces."""
    if comm.rank == 0:
        comm.send(np.arange(100.0), 1, tag=5)
    elif comm.rank == 1:
        comm.recv(0, tag=5)
    return comm.allreduce(comm.rank, op=lambda a, b: a + b)


class TestFaultPlanDeterminism:
    def test_chaos_plan_is_seeded(self):
        a = FaultPlan.chaos(nranks=4, seed=9)
        b = FaultPlan.chaos(nranks=4, seed=9)
        assert a.faults == b.faults
        assert FaultPlan.chaos(nranks=4, seed=10).faults != a.faults

    def test_chaos_never_crashes_rank_zero(self):
        for seed in range(20):
            plan = FaultPlan.chaos(nranks=4, seed=seed)
            assert all(c.rank != 0 for c in plan.crashes())

    def test_same_plan_same_virtual_timeline(self):
        plan = FaultPlan(faults=(DelaySpike(src=0, delay=0.25),))
        makespans = []
        for _ in range(3):
            plan.reset()
            res = run_spmd(MACHINE, ping, nranks=4, faults=plan)
            makespans.append(res.makespan)
        assert makespans[0] == makespans[1] == makespans[2]


class TestDelaySpike:
    def test_delay_inflates_makespan(self):
        base = run_spmd(MACHINE, ping, nranks=4).makespan
        plan = FaultPlan(faults=(DelaySpike(src=0, dst=1, tag=5, delay=0.5),))
        res = run_spmd(MACHINE, ping, nranks=4, faults=plan)
        assert res.makespan == pytest.approx(base + 0.5, rel=1e-6)
        assert res.metrics.faults_delay == 1

    def test_delay_event_traced(self):
        plan = FaultPlan(faults=(DelaySpike(src=0, dst=1, tag=5, delay=0.5),))
        res = run_spmd(MACHINE, ping, nranks=4, faults=plan, trace=True)
        assert len(res.trace.of_kind("delay_spike")) == 1

    def test_count_limits_firings(self):
        def chatty(comm):
            if comm.rank == 0:
                for _ in range(5):
                    comm.send(b"x", 1, tag=5)
            elif comm.rank == 1:
                for _ in range(5):
                    comm.recv(0, tag=5)

        plan = FaultPlan(faults=(DelaySpike(src=0, delay=0.1, count=2),))
        res = run_spmd(MACHINE, chatty, nranks=2, faults=plan)
        assert res.metrics.faults_delay == 2


class TestSendFault:
    def test_unrecovered_send_fault_raises(self):
        plan = FaultPlan(faults=(SendFault(src=0, dst=1, tag=5),))
        with pytest.raises(TransientSendError):
            run_spmd(MACHINE, ping, nranks=4, faults=plan, real_timeout=10.0)

    def test_send_fault_annotates_rank_failures(self):
        plan = FaultPlan(faults=(SendFault(src=0, dst=1, tag=5),))
        with pytest.raises(TransientSendError) as exc_info:
            run_spmd(MACHINE, ping, nranks=4, faults=plan, real_timeout=10.0)
        infos = exc_info.value.rank_failures
        assert len(infos) == 1
        assert isinstance(infos[0], RankFailureInfo)
        assert infos[0].rank == 0
        assert isinstance(exc_info.value.__cause__, RankFailureGroup)


class TestRankCrash:
    def test_crash_kills_the_named_rank(self):
        plan = FaultPlan(faults=(RankCrash(rank=2, at=0.0),))
        with pytest.raises(RankFailure) as exc_info:
            run_spmd(MACHINE, ping, nranks=4, faults=plan, real_timeout=10.0)
        assert exc_info.value.rank == 2
        infos = exc_info.value.rank_failures
        assert [i.rank for i in infos] == [2]
        assert infos[0].vtime >= 0.0

    def test_crash_fires_once_per_spec(self):
        plan = FaultPlan(faults=(RankCrash(rank=1, at=0.0),))
        with pytest.raises(RankFailure):
            run_spmd(MACHINE, ping, nranks=4, faults=plan, real_timeout=10.0)
        plan.reset()
        with pytest.raises(RankFailure):
            run_spmd(MACHINE, ping, nranks=4, faults=plan, real_timeout=10.0)

    def test_crash_traced(self):
        plan = FaultPlan(faults=(RankCrash(rank=1, at=0.0),))
        with pytest.raises(RankFailure):
            run_spmd(
                MACHINE, ping, nranks=4, faults=plan,
                real_timeout=10.0, trace=True,
            )


class TestSlowNode:
    def test_straggler_inflates_compute(self):
        def work(comm):
            comm.compute(0.01)
            return comm.clock.now

        plan = FaultPlan(faults=(SlowNode(node=0, factor=4.0),))
        res = run_spmd(MACHINE, work, nranks=4, ranks_per_node=2, faults=plan)
        base = run_spmd(MACHINE, work, nranks=4, ranks_per_node=2)
        # ranks 0,1 live on node 0 and run 4x slower
        assert res.results[0] == pytest.approx(base.results[0] * 4.0)
        assert res.results[2] == pytest.approx(base.results[2])
        assert res.metrics.faults_straggler == 2


class TestZeroCostWhenDisabled:
    def test_no_plan_means_identical_timeline(self):
        a = run_spmd(MACHINE, ping, nranks=4)
        b = run_spmd(MACHINE, ping, nranks=4, faults=None)
        assert a.makespan == b.makespan
        assert b.recovery is None

    def test_empty_plan_means_identical_timeline(self):
        a = run_spmd(MACHINE, ping, nranks=4)
        b = run_spmd(MACHINE, ping, nranks=4, faults=FaultPlan())
        assert a.makespan == b.makespan
        # a report is attached (all-zero) because a plan was installed
        assert b.recovery is not None
        assert b.recovery.total_faults == 0
