"""Collective-operation tests: correctness on every rank count 1..9."""
import numpy as np
import pytest

from repro.cluster import MachineSpec, run_spmd

MACHINE = MachineSpec(nodes=16, cores_per_node=1)
SIZES = [1, 2, 3, 4, 5, 7, 8, 9]


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast_all_ranks_receive(size, root):
    root = size - 1 if root == "last" else 0

    def main(comm):
        obj = {"data": [1, 2, 3]} if comm.rank == root else None
        return comm.bcast(obj, root=root)

    res = run_spmd(MACHINE, main, nranks=size)
    assert all(r == {"data": [1, 2, 3]} for r in res.results)


@pytest.mark.parametrize("size", SIZES)
def test_scatter_distributes_chunks(size):
    def main(comm):
        chunks = [i * 10 for i in range(comm.size)] if comm.rank == 0 else None
        return comm.scatter(chunks, root=0)

    res = run_spmd(MACHINE, main, nranks=size)
    assert res.results == [i * 10 for i in range(size)]


@pytest.mark.parametrize("size", SIZES)
def test_gather_collects_in_rank_order(size):
    def main(comm):
        return comm.gather(comm.rank**2, root=0)

    res = run_spmd(MACHINE, main, nranks=size)
    assert res.results[0] == [i**2 for i in range(size)]
    assert all(r is None for r in res.results[1:])


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("root", [0, "mid"])
def test_reduce_sum(size, root):
    root = size // 2 if root == "mid" else 0

    def main(comm):
        return comm.reduce(comm.rank + 1, op=lambda a, b: a + b, root=root)

    res = run_spmd(MACHINE, main, nranks=size)
    assert res.results[root] == size * (size + 1) // 2
    assert all(r is None for i, r in enumerate(res.results) if i != root)


@pytest.mark.parametrize("size", SIZES)
def test_reduce_array_sum(size):
    def main(comm):
        local = np.full(5, float(comm.rank + 1))
        return comm.reduce(local, op=lambda a, b: a + b, root=0)

    res = run_spmd(MACHINE, main, nranks=size)
    np.testing.assert_allclose(res.results[0], np.full(5, size * (size + 1) / 2))


@pytest.mark.parametrize("size", SIZES)
def test_allreduce_everyone_gets_total(size):
    def main(comm):
        return comm.allreduce(comm.rank, op=lambda a, b: a + b)

    res = run_spmd(MACHINE, main, nranks=size)
    assert res.results == [size * (size - 1) // 2] * size


@pytest.mark.parametrize("size", SIZES)
def test_allgather(size):
    def main(comm):
        return comm.allgather(chr(ord("a") + comm.rank))

    res = run_spmd(MACHINE, main, nranks=size)
    expected = [chr(ord("a") + i) for i in range(size)]
    assert res.results == [expected] * size


@pytest.mark.parametrize("size", SIZES)
def test_alltoall_transposes(size):
    def main(comm):
        chunks = [(comm.rank, dst) for dst in range(comm.size)]
        return comm.alltoall(chunks)

    res = run_spmd(MACHINE, main, nranks=size)
    for rank, got in enumerate(res.results):
        assert got == [(src, rank) for src in range(size)]


@pytest.mark.parametrize("size", SIZES)
def test_barrier_synchronizes_clocks(size):
    def main(comm):
        comm.compute(float(comm.rank))  # rank i works i seconds
        comm.barrier()
        return comm.clock.now

    res = run_spmd(MACHINE, main, nranks=size)
    slowest = size - 1.0
    assert all(t >= slowest for t in res.results)


def test_consecutive_collectives_do_not_cross_talk():
    def main(comm):
        a = comm.bcast(comm.rank if comm.rank == 0 else None, root=0)
        b = comm.bcast(comm.rank if comm.rank == 1 else None, root=1)
        c = comm.allreduce(1, op=lambda x, y: x + y)
        return (a, b, c)

    res = run_spmd(MACHINE, main, nranks=6)
    assert res.results == [(0, 1, 6)] * 6


def test_bcast_tree_is_log_depth():
    """With 8 ranks a binomial bcast needs 3 latency hops, not 7."""

    def main(comm):
        comm.bcast("payload", root=0)
        return comm.clock.now

    machine = MachineSpec(nodes=8, cores_per_node=1)
    res = run_spmd(machine, main, nranks=8)
    lat = machine.net.latency
    finish = max(res.results)
    # Tree depth 3 -> ~3 latencies on the critical path; linear would be >=7.
    assert finish < 6.5 * lat
    assert finish >= 2.5 * lat


def test_scatter_root_injection_is_linear():
    """Root must inject each chunk: time grows with rank count."""

    def main(comm):
        payload = np.zeros(125_000)  # 1 MB
        chunks = [payload] * comm.size if comm.rank == 0 else None
        comm.scatter(chunks, root=0)
        return comm.clock.now

    m = MachineSpec(nodes=16, cores_per_node=1)
    t4 = run_spmd(m, main, nranks=4).makespan
    t16 = run_spmd(m, main, nranks=16).makespan
    assert t16 > 2.5 * t4
