"""Tests for nonblocking requests and communication tracing."""
import numpy as np
import pytest

from repro.cluster import MachineSpec, run_spmd
from repro.cluster.trace import check_causality, render_timeline

MACHINE = MachineSpec(nodes=4, cores_per_node=2)


class TestNonblocking:
    def test_isend_irecv_roundtrip(self):
        def main(comm):
            if comm.rank == 0:
                req = comm.isend({"a": 7}, dest=1, tag=11)
                req.wait()
                return None
            req = comm.irecv(source=0, tag=11)
            return req.wait()

        res = run_spmd(MACHINE, main, nranks=2)
        assert res.results[1] == {"a": 7}

    def test_send_request_is_immediately_complete(self):
        def main(comm):
            if comm.rank == 0:
                return comm.isend(1, dest=1).test()
            return comm.recv(source=0)

        res = run_spmd(MACHINE, main, nranks=2)
        assert res.results[0] is True

    def test_irecv_not_complete_until_waited(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("x", dest=1)
                return None
            req = comm.irecv(source=0)
            before = req.test()
            value = req.wait()
            return (before, req.test(), value)

        res = run_spmd(MACHINE, main, nranks=2)
        assert res.results[1] == (False, True, "x")

    def test_overlapping_irecvs(self):
        """The mri-q §4.2 pattern: post receives, then wait for each."""

        def main(comm):
            if comm.rank == 0:
                reqs = [comm.irecv(source=s, tag=5) for s in range(1, comm.size)]
                return sorted(r.wait() for r in reqs)
            comm.compute(0.01 * comm.rank)
            comm.send(comm.rank * 100, dest=0, tag=5)
            return None

        res = run_spmd(MACHINE, main, nranks=4)
        assert res.results[0] == [100, 200, 300]

    def test_double_wait_returns_same_value(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(42, dest=1)
                return None
            req = comm.irecv(source=0)
            return (req.wait(), req.wait())

        res = run_spmd(MACHINE, main, nranks=2)
        assert res.results[1] == (42, 42)


class TestTracing:
    def _traced_run(self, nranks=4):
        def main(comm):
            total = comm.allreduce(comm.rank, op=lambda a, b: a + b)
            if comm.rank == 0:
                comm.Send(np.arange(10.0), dest=1, tag=3)
            elif comm.rank == 1:
                comm.Recv(source=0, tag=3)
            return total

        return run_spmd(MACHINE, main, nranks=nranks, trace=True)

    def test_trace_disabled_by_default(self):
        def main(comm):
            return comm.bcast(comm.rank if comm.rank == 0 else None)

        res = run_spmd(MACHINE, main, nranks=2)
        assert res.trace is None

    def test_trace_records_events(self):
        res = self._traced_run()
        assert res.trace is not None
        assert len(res.trace.sends()) == len(res.trace.recvs())
        assert len(res.trace.events) > 6

    def test_trace_is_causally_consistent(self):
        res = self._traced_run()
        assert check_causality(res.trace) == []

    def test_timeline_renders(self):
        res = self._traced_run()
        text = render_timeline(res.trace)
        assert "communication events" in text
        assert "rank 0" in text

    def test_per_rank_view_is_time_ordered(self):
        res = self._traced_run()
        for rank in range(4):
            times = [e.time for e in res.trace.for_rank(rank)]
            assert times == sorted(times)

    def test_bytes_in_trace_match_metrics(self):
        res = self._traced_run()
        traced = sum(e.nbytes for e in res.trace.sends())
        assert traced == res.metrics.bytes_sent

    def test_causality_detects_violations(self):
        from repro.cluster.trace import CommEvent, TraceLog

        log = TraceLog()
        log.record(CommEvent("send", 5.0, 0, 1, 0, 100))
        log.record(CommEvent("recv", 1.0, 1, 0, 0, 100))  # before the send!
        assert len(check_causality(log)) == 1

    def test_causality_detects_orphan_recv(self):
        from repro.cluster.trace import CommEvent, TraceLog

        log = TraceLog()
        log.record(CommEvent("recv", 1.0, 1, 0, 0, 100))
        violations = check_causality(log)
        assert any("no matching send" in v for v in violations)


class TestSpanLayer:
    """The observability layer's view of the same traced runs: absorbed
    events stay causal, collectives appear as per-rank spans, and the
    event dict form round-trips the CommEvent fields."""

    def _traced_run(self, nranks=4):
        return TestTracing._traced_run(self, nranks=nranks)

    def test_absorbed_events_stay_causal_at_span_layer(self):
        from repro.obs.export import check_event_causality
        from repro.obs.spans import capture

        res = self._traced_run()
        with capture() as rec:
            rec.absorb_events(res.trace.events, None)
        assert len(rec.events) == len(res.trace.events)
        assert check_event_causality(rec.events) == []

    def test_comm_event_dict_roundtrips_fields(self):
        res = self._traced_run()
        for e in res.trace.events:
            d = e.as_dict()
            assert d == {"kind": e.kind, "time": e.time, "rank": e.rank,
                         "peer": e.peer, "tag": e.tag, "nbytes": e.nbytes}

    def test_collectives_record_spans_under_capture(self):
        from repro.obs.spans import capture

        with capture() as rec:
            res = self._traced_run()
        assert res is not None
        coll = rec.spans_of_kind("collective")
        # allreduce decomposes into reduce + bcast; all three names show
        # up, once per rank.
        names = {s.name for s in coll}
        assert {"allreduce", "reduce", "bcast"} <= names
        assert {s.rank for s in coll} == {0, 1, 2, 3}

    def test_collectives_record_nothing_when_disabled(self):
        from repro.obs.spans import Span, active

        assert active() is None
        before = Span.allocated
        self._traced_run()
        assert Span.allocated == before
