"""Transport conformance: every available backend runs the same programs.

The matrix parametrizes over :func:`available_transports` (``sim``
always; ``local`` on POSIX; ``mpi`` only under an ``mpiexec`` world with
mpi4py installed -- it skips cleanly otherwise) and asserts the
cross-backend contract: identical results, identical *virtual* timing
(availability stamps are causal, computed from the cost model, never
from wall time), and identical driver-observable state for a full app
run.
"""
import numpy as np
import pytest

from repro.bench.calibrate import costs_for
from repro.bench.harness import APPS
from repro.cluster import MachineSpec, run_spmd
from repro.cluster.transport import SHM_MIN_BYTES, available_transports

pytestmark = pytest.mark.transport

TRANSPORTS = available_transports(nranks=4)


@pytest.fixture(params=TRANSPORTS)
def transport(request):
    return request.param


def machine_for(transport: str, nodes: int = 4) -> MachineSpec:
    return MachineSpec(nodes=nodes, cores_per_node=1, transport=transport)


def sim_reference(rank_fn, nranks, **kw):
    """The same program on the sim backend (the conformance oracle)."""
    return run_spmd(machine_for("sim", nranks), rank_fn, nranks=nranks, **kw)


class TestPointToPoint:
    def test_echo(self, transport):
        def rank_fn(comm):
            if comm.rank == 0:
                for dst in range(1, comm.size):
                    comm.send({"ping": dst * 10}, dst, tag=1)
                return sorted(comm.recv(src, tag=2) for src in range(1, comm.size))
            got = comm.recv(0, tag=1)
            comm.send(got["ping"] + comm.rank, 0, tag=2)
            return got["ping"]

        res = run_spmd(machine_for(transport), rank_fn, nranks=4)
        ref = sim_reference(rank_fn, 4)
        assert res.results == ref.results
        assert res.results[0] == [11, 22, 33]
        assert res.makespan == ref.makespan
        assert res.final_clocks == ref.final_clocks

    def test_buffer_send_small_and_shm_sized(self, transport):
        """Buffer-protocol sends below and above the shared-memory
        threshold both round-trip bitwise."""
        small = np.arange(7.0)
        big = np.arange(SHM_MIN_BYTES // 8 + 64, dtype=np.float64)

        def rank_fn(comm):
            if comm.rank == 0:
                comm.Send(small, 1, tag=3)
                comm.Send(big, 1, tag=4)
                return None
            a = comm.Recv(0, tag=3)
            b = comm.Recv(0, tag=4)
            return (a.tobytes(), b.tobytes(), a.dtype.str, b.shape)

        res = run_spmd(machine_for(transport, nodes=2), rank_fn, nranks=2)
        a_bytes, b_bytes, dts, shape = res.results[1]
        assert a_bytes == small.tobytes()
        assert b_bytes == big.tobytes()
        assert dts == small.dtype.str
        assert shape == big.shape

    def test_message_matching_by_source_and_tag(self, transport):
        """Out-of-order (src, tag) consumption: per-sender FIFO holds."""

        def rank_fn(comm):
            if comm.rank == 0:
                comm.send("a1", 2, tag=1)
                comm.send("a2", 2, tag=1)
                comm.send("b", 2, tag=5)
                return None
            if comm.rank == 1:
                comm.send("c", 2, tag=1)
                return None
            late = comm.recv(0, tag=5)  # posted last, consumed first
            first = comm.recv(0, tag=1)
            other = comm.recv(1, tag=1)
            second = comm.recv(0, tag=1)
            return (late, first, second, other)

        res = run_spmd(machine_for(transport, nodes=3), rank_fn, nranks=3)
        assert res.results[2] == ("b", "a1", "a2", "c")


class TestCollectives:
    def test_scatter_gather(self, transport):
        def rank_fn(comm):
            chunk = comm.scatter(
                [np.full(4, r, dtype=np.int64) for r in range(comm.size)]
                if comm.rank == 0
                else None,
                root=0,
            )
            out = comm.gather(int(chunk.sum()), root=0)
            return out

        res = run_spmd(machine_for(transport), rank_fn, nranks=4)
        ref = sim_reference(rank_fn, 4)
        assert res.results[0] == [0, 4, 8, 12]
        assert res.results == ref.results
        assert res.makespan == ref.makespan

    def test_barrier_and_allreduce(self, transport):
        def rank_fn(comm):
            comm.barrier()
            total = comm.allreduce(comm.rank + 1, op=lambda a, b: a + b)
            comm.barrier()
            return total

        res = run_spmd(machine_for(transport), rank_fn, nranks=4)
        ref = sim_reference(rank_fn, 4)
        assert res.results == [10, 10, 10, 10]
        assert res.makespan == ref.makespan


class TestHandles:
    def test_handle_round_trip_ships_id_not_rows(self, transport):
        """A DistArray handle crosses the wire as a few-byte id; the
        receiving rank resolves the same rows."""
        from repro.data.plane import DataPlane
        from repro.serial import serialize

        plane = DataPlane()
        data = np.arange(64.0).reshape(16, 4)
        handle = plane.register(data, "block")
        # The handle itself serializes small -- ids, not rows.
        assert len(serialize(handle)) < data.nbytes / 4

        def rank_fn(comm):
            if comm.rank == 0:
                comm.send(handle, 1, tag=7)
                return None
            got = comm.recv(0, tag=7)
            return (got.array_id, got.array.tobytes())

        res = run_spmd(machine_for(transport, nodes=2), rank_fn, nranks=2)
        got_id, got_bytes = res.results[1]
        assert got_id == handle.array_id
        assert got_bytes == data.tobytes()


class TestFullApp:
    @pytest.mark.parametrize("app", ["mriq", "tpacf"])
    def test_app_bit_identical_to_sim(self, transport, app):
        """A whole driver run -- partitioning, data plane, collectives,
        meters -- is bit-identical across backends."""
        if transport == "sim":
            pytest.skip("sim is the oracle")
        spec = APPS[app]
        problem = spec.make_problem(**spec.sandbox_params)
        costs = costs_for(app, "triolet", problem)

        def run(tr):
            from repro.bench import reset_run_state

            reset_run_state()
            m = machine_for(tr, nodes=2)
            return spec.runners["triolet"](problem, m, costs)

        ref = run("sim")
        got = run(transport)
        assert got.ok and ref.ok
        if isinstance(ref.value, dict):
            assert set(ref.value) == set(got.value)
            for k in ref.value:
                assert np.asarray(got.value[k]).tobytes() == np.asarray(
                    ref.value[k]
                ).tobytes()
        else:
            assert np.asarray(got.value).tobytes() == np.asarray(
                ref.value
            ).tobytes()
        # The virtual timeline and the merged driver state match too.
        assert got.elapsed == ref.elapsed
        assert got.detail["meter"] == ref.detail["meter"]
        assert got.detail["data_plane"] == ref.detail["data_plane"]


class TestErrors:
    def test_rank_error_propagates(self, transport):
        def rank_fn(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 exploded")
            comm.barrier()
            return comm.rank

        with pytest.raises(ValueError, match="exploded"):
            run_spmd(machine_for(transport, nodes=2), rank_fn, nranks=2,
                     real_timeout=20.0)
