"""Tests for the vector collectives (Scatterv/Gatherv/reduce_scatter)."""
import numpy as np
import pytest

from repro.cluster import MachineSpec, run_spmd
from repro.cluster.collectives import gatherv, reduce_scatter, scatterv

MACHINE = MachineSpec(nodes=8, cores_per_node=2)


class TestScatterv:
    def test_uneven_rows(self):
        counts = [3, 1, 4, 2]
        data = np.arange(10.0)

        def main(comm):
            local = scatterv(comm, data if comm.rank == 0 else None, counts if comm.rank == 0 else None)
            return list(local)

        res = run_spmd(MACHINE, main, nranks=4)
        assert res.results == [[0, 1, 2], [3], [4, 5, 6, 7], [8, 9]]

    def test_2d_rows(self):
        data = np.arange(12.0).reshape(6, 2)

        def main(comm):
            local = scatterv(
                comm,
                data if comm.rank == 0 else None,
                [4, 2] if comm.rank == 0 else None,
            )
            return local.shape

        res = run_spmd(MACHINE, main, nranks=2)
        assert res.results == [(4, 2), (2, 2)]

    def test_zero_count_ranks(self):
        def main(comm):
            local = scatterv(
                comm,
                np.arange(4.0) if comm.rank == 0 else None,
                [4, 0] if comm.rank == 0 else None,
            )
            return len(local)

        res = run_spmd(MACHINE, main, nranks=2)
        assert res.results == [4, 0]

    def test_bad_counts_rejected(self):
        def main(comm):
            scatterv(
                comm,
                np.arange(4.0) if comm.rank == 0 else None,
                [1, 1] if comm.rank == 0 else None,  # sums to 2, not 4
            )

        with pytest.raises(ValueError):
            run_spmd(MACHINE, main, nranks=2)


class TestGatherv:
    def test_roundtrip_with_scatterv(self):
        data = np.arange(20.0)
        counts = [7, 3, 6, 4]

        def main(comm):
            local = scatterv(
                comm,
                data if comm.rank == 0 else None,
                counts if comm.rank == 0 else None,
            )
            return gatherv(comm, local * 2)

        res = run_spmd(MACHINE, main, nranks=4)
        np.testing.assert_array_equal(res.results[0], data * 2)
        assert all(r is None for r in res.results[1:])


class TestReduceScatter:
    def test_each_rank_owns_its_chunk(self):
        def main(comm):
            # rank r contributes [r, r, r, r] split as one chunk per rank
            chunks = [np.full(2, float(comm.rank)) for _ in range(comm.size)]
            return reduce_scatter(comm, chunks, lambda a, b: a + b)

        res = run_spmd(MACHINE, main, nranks=4)
        total = sum(range(4))
        for r in res.results:
            np.testing.assert_array_equal(r, np.full(2, float(total)))

    def test_matches_allreduce_slice(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((4, 8))  # per-rank contribution rows

        def main(comm):
            mine = data[comm.rank]
            chunks = [mine[2 * i : 2 * i + 2] for i in range(comm.size)]
            rs = reduce_scatter(comm, chunks, lambda a, b: a + b)
            full = comm.allreduce(mine, op=lambda a, b: a + b)
            return np.allclose(rs, full[2 * comm.rank : 2 * comm.rank + 2])

        res = run_spmd(MACHINE, main, nranks=4)
        assert all(res.results)
