"""Property-based tests for the simulated cluster (hypothesis).

Invariants: determinism of virtual timelines under arbitrary
communication patterns, byte conservation, collective correctness for
random payloads and machine shapes, and clock monotonicity.
"""
import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster import MachineSpec, run_spmd

machines = st.builds(
    MachineSpec,
    nodes=st.integers(1, 6),
    cores_per_node=st.integers(1, 4),
)


@st.composite
def ring_programs(draw):
    """A random ring-communication schedule: (rounds, compute weights)."""
    rounds = draw(st.integers(1, 4))
    nranks = draw(st.integers(2, 6))
    weights = draw(
        st.lists(
            st.floats(0, 0.01, allow_nan=False),
            min_size=nranks,
            max_size=nranks,
        )
    )
    return rounds, nranks, weights


class TestTimelineProperties:
    @given(ring_programs())
    @settings(max_examples=25, deadline=None)
    def test_ring_deterministic_and_causal(self, program):
        rounds, nranks, weights = program

        def main(comm):
            token = float(comm.rank)
            for _ in range(rounds):
                comm.compute(weights[comm.rank])
                comm.send(token, dest=(comm.rank + 1) % comm.size, tag=1)
                token = comm.recv(source=(comm.rank - 1) % comm.size, tag=1)
            return token

        machine = MachineSpec(nodes=nranks, cores_per_node=1)
        r1 = run_spmd(machine, main, nranks=nranks, trace=True)
        r2 = run_spmd(machine, main, nranks=nranks)
        assert r1.final_clocks == r2.final_clocks
        from repro.cluster.trace import check_causality

        assert check_causality(r1.trace) == []
        # Every rank waited through `rounds` hops: clocks are positive.
        assert all(t > 0 for t in r1.final_clocks)

    @given(
        st.integers(2, 8),
        st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=16),
    )
    @settings(max_examples=25, deadline=None)
    def test_allreduce_sums_any_payload(self, nranks, values):
        arr = np.array(values)

        def main(comm):
            return comm.allreduce(arr * (comm.rank + 1), op=lambda a, b: a + b)

        machine = MachineSpec(nodes=nranks, cores_per_node=1)
        res = run_spmd(machine, main, nranks=nranks)
        expected = arr * sum(range(1, nranks + 1))
        for r in res.results:
            np.testing.assert_allclose(r, expected, atol=1e-9)

    @given(st.integers(1, 8), st.integers(0, 40))
    @settings(max_examples=25, deadline=None)
    def test_bytes_conserved_in_scatter_gather(self, nranks, payload):
        data = [np.arange(float(payload)) + i for i in range(nranks)]

        def main(comm):
            chunk = comm.scatter(data if comm.rank == 0 else None)
            return comm.gather(chunk.sum() if len(chunk) else 0.0)

        machine = MachineSpec(nodes=max(1, nranks), cores_per_node=1)
        res = run_spmd(machine, main, nranks=nranks)
        sent = sum(m.bytes_sent for m in res.metrics.per_rank)
        recvd = sum(m.bytes_received for m in res.metrics.per_rank)
        assert sent == recvd

    @given(machines, st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_clock_monotone_through_barriers(self, machine, nbarriers):
        nranks = machine.nodes

        def main(comm):
            marks = []
            for k in range(nbarriers):
                comm.compute(1e-4 * (comm.rank + 1))
                comm.barrier()
                marks.append(comm.clock.now)
            return marks

        res = run_spmd(machine, main, nranks=nranks)
        for marks in res.results:
            assert marks == sorted(marks)
        # After each barrier, every rank has the same lower bound: the
        # slowest rank's compute so far.
        finals = [m[-1] for m in res.results]
        assert max(finals) - min(finals) < 1e-3
