"""Property-based tests (hypothesis) for the indexed-stream merge algebra.

The reference model is the obvious one: an indexed stream *is* a
``dict`` from ``int64`` key to value (``IndexedIter.to_dict``), built
with last-occurrence-wins semantics.  Against that model:

* ``indexed_pairs`` agrees with ``dict(zip(keys, values))`` for any
  sorted key multiset -- duplicates, gaps, empty and singleton sets;
* ``intersect``/``union_merge`` with an exact commutative combiner are
  commutative and associative up to stream order (keys always come out
  sorted, so "up to order" means plain dict equality);
* the empty stream is the identity of ``union_merge`` and the
  annihilator of ``intersect``;
* ``lookup`` is dict comprehension over the probe set;
* merging two sparse histograms with ``union_merge`` equals dense
  histogram addition (the group-by/histogram-merge customer).

Values are small integers stored as float64, so every combiner below is
exact and the dict comparisons are equalities, not tolerances.
"""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.iterators.indexed import (
    indexed,
    indexed_pairs,
    intersect,
    lookup,
    map_values,
    union_merge,
)
from repro.core.iterators.indexed import _pair_add
from repro.testing import kernels as K

pytestmark = pytest.mark.sparse

# A stream spec: (sorted int64 keys -- duplicates allowed, float64 values).
pair_lists = st.lists(
    st.tuples(st.integers(0, 40), st.integers(0, 9)), max_size=12
)


def _stream_arrays(pairs):
    pairs = sorted(pairs, key=lambda kv: kv[0])
    keys = np.array([k for k, _ in pairs], dtype=np.int64)
    vals = np.array([v for _, v in pairs], dtype=np.float64)
    return keys, vals


streams = pair_lists.map(_stream_arrays)


def _make(spec):
    keys, vals = spec
    return indexed_pairs(keys, vals)


def _model(spec) -> dict:
    keys, vals = spec
    return {int(k): float(v) for k, v in zip(keys, vals)}


EMPTY = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))


class TestDictAgreement:
    @given(streams)
    def test_indexed_pairs_is_dict_update(self, spec):
        assert _make(spec).to_dict() == _model(spec)

    @given(st.lists(st.integers(0, 9), max_size=10))
    def test_indexed_is_enumerate(self, vals):
        arr = np.asarray(vals, dtype=np.float64)
        assert indexed(arr).to_dict() == dict(enumerate(arr))

    @given(streams)
    def test_keys_come_out_strictly_increasing(self, spec):
        ks = _make(spec).key_array()
        assert np.all(ks[1:] > ks[:-1])

    @given(streams, st.lists(st.integers(0, 40), max_size=8))
    def test_lookup_is_dict_comprehension(self, spec, probes):
        d = _model(spec)
        want = {k: d[k] for k in set(probes) if k in d}
        assert lookup(_make(spec), np.asarray(probes, dtype=np.int64)
                      ).to_dict() == want

    @given(streams)
    def test_map_values_maps_the_dict_values(self, spec):
        got = map_values(K.k_double, _make(spec)).to_dict()
        assert got == {k: 2.0 * v for k, v in _model(spec).items()}


class TestMergeLaws:
    @given(streams, streams)
    def test_intersect_reference(self, sa, sb):
        da, db = _model(sa), _model(sb)
        want = {k: da[k] + db[k] for k in da.keys() & db.keys()}
        assert intersect(_make(sa), _make(sb), _pair_add).to_dict() == want

    @given(streams, streams)
    def test_union_reference(self, sa, sb):
        da, db = _model(sa), _model(sb)
        want = {
            k: da.get(k, 0.0) + db.get(k, 0.0) for k in da.keys() | db.keys()
        }
        assert union_merge(_make(sa), _make(sb)).to_dict() == want

    @given(streams, streams)
    def test_commutative_up_to_order(self, sa, sb):
        a, b = _make(sa), _make(sb)
        assert (
            intersect(a, b, _pair_add).to_dict()
            == intersect(b, a, _pair_add).to_dict()
        )
        assert union_merge(a, b).to_dict() == union_merge(b, a).to_dict()

    @given(streams, streams, streams)
    @settings(max_examples=60)
    def test_associative(self, sa, sb, sc):
        a, b, c = _make(sa), _make(sb), _make(sc)
        assert (
            intersect(intersect(a, b, _pair_add), c, _pair_add).to_dict()
            == intersect(a, intersect(b, c, _pair_add), _pair_add).to_dict()
        )
        assert (
            union_merge(union_merge(a, b), c).to_dict()
            == union_merge(a, union_merge(b, c)).to_dict()
        )

    @given(streams)
    def test_empty_is_union_identity_and_intersect_annihilator(self, spec):
        a, e = _make(spec), _make(EMPTY)
        assert union_merge(a, e).to_dict() == _model(spec)
        assert union_merge(e, a).to_dict() == _model(spec)
        assert intersect(a, e).to_dict() == {}
        assert intersect(e, a).to_dict() == {}

    @given(streams)
    def test_intersect_with_self_pairs_values(self, spec):
        a = _make(spec)
        got = intersect(a, a).to_dict()
        assert got == {k: (v, v) for k, v in _model(spec).items()}


class TestHistogramMergeAsUnion:
    """Group-by/histogram merge is stream union: two partial histograms
    keyed by bin, merged with ``+``, equal the dense histogram sum."""

    @given(
        st.lists(st.integers(0, 15), max_size=40),
        st.lists(st.integers(0, 15), max_size=40),
    )
    def test_sparse_union_equals_dense_addition(self, xs, ys):
        dense = (
            np.bincount(np.asarray(xs, dtype=np.int64), minlength=16)
            + np.bincount(np.asarray(ys, dtype=np.int64), minlength=16)
        ).astype(np.float64)

        def sparse_hist(zs):
            binned = np.asarray(zs, dtype=np.int64)
            bins, counts = np.unique(binned, return_counts=True)
            return indexed_pairs(bins, counts.astype(np.float64))

        merged = union_merge(sparse_hist(xs), sparse_hist(ys)).to_dict()
        assert merged == {
            int(b): dense[b] for b in np.flatnonzero(dense)
        }
