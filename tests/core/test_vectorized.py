"""The vectorized bulk-execution engine: parity with the scalar paths.

Every assertion here is a two-sided run: the same pipeline consumed with
the engine on and off must produce bit-identical values AND identical
cost-meter counters -- vectorization is an execution strategy, not a
semantics change.
"""
import numpy as np
import pytest

import repro.triolet as tri
from repro.core import meter
from repro.core.engine import (
    SEGMENTED,
    chunk_size,
    register_bulk,
    set_chunk_size,
    use_vectorization,
)
from repro.core.fusion import plan_for, planner_stats, reset_planner
from repro.serial import closure, register_function


@pytest.fixture(autouse=True)
def _fresh_planner():
    reset_planner()
    yield
    reset_planner()


# -- synthetic kernels with registered bulk forms ---------------------------


@register_function
def _scale(k, x):
    return k * x


def _scale_bulk(k, xs):
    return k * xs


register_bulk(_scale, _scale_bulk)


@register_function
def _is_even(x):
    return int(x) % 2 == 0


def _is_even_bulk(xs):
    return xs.astype(np.int64) % 2 == 0


register_bulk(_is_even, _is_even_bulk)


@register_function
def _repeat(x):
    # variable-length expansion, including empty segments
    return np.full(int(x) % 3, float(x))


def _repeat_bulk(xs):
    lengths = xs.astype(np.int64) % 3
    return np.repeat(xs.astype(float), lengths), lengths


register_bulk(_repeat, _repeat_bulk, kind=SEGMENTED)


@register_function
def _pair_prod(xy):
    x, y = xy
    return x * y


def _pair_prod_bulk(xys):
    xs, ys = xys
    return xs * ys


register_bulk(_pair_prod, _pair_prod_bulk)


@register_function
def _no_bulk(x):
    return x + 1.0


XS = np.arange(200.0)
YS = np.linspace(0.0, 3.0, 200)


def _both_ways(fn):
    """Run *fn* engine-on and engine-off under fresh meters."""
    with use_vectorization(True), meter.metered() as mv:
        v = fn()
    with use_vectorization(False), meter.metered() as ms:
        s = fn()
    return (v, mv), (s, ms)


def _assert_parity(fn):
    (v, mv), (s, ms) = _both_ways(fn)
    va, sa = np.asarray(v), np.asarray(s)
    assert va.tobytes() == sa.tobytes(), "values differ bitwise"
    assert mv == ms, f"meters differ: {mv} vs {ms}"
    return v


class TestFlatParity:
    def test_map_sum(self):
        out = _assert_parity(
            lambda: tri.sum(tri.map(closure(_scale, 3.0), tri.iterate(XS)))
        )
        assert out == pytest.approx(3.0 * XS.sum())

    def test_zip_map_sum(self):
        _assert_parity(
            lambda: tri.sum(tri.map(closure(_pair_prod), tri.zip(XS, YS)))
        )

    def test_map_build(self):
        out = _assert_parity(
            lambda: tri.build(tri.map(closure(_scale, -2.0), tri.iterate(XS)))
        )
        assert out.shape == XS.shape

    def test_range_source(self):
        _assert_parity(
            lambda: tri.sum(tri.map(closure(_scale, 2.0), tri.arrayRange(150)))
        )


class TestNestParity:
    def test_filter_sum(self):
        out = _assert_parity(
            lambda: tri.sum(tri.filter(closure(_is_even), tri.iterate(XS)))
        )
        assert out == pytest.approx(XS[::2].sum())

    def test_concat_map_sum(self):
        _assert_parity(
            lambda: tri.sum(tri.concat_map(closure(_repeat), tri.iterate(XS)))
        )

    def test_map_after_filter(self):
        _assert_parity(
            lambda: tri.sum(
                tri.map(
                    closure(_scale, 0.5),
                    tri.filter(closure(_is_even), tri.iterate(XS)),
                )
            )
        )

    def test_map_after_concat_map(self):
        _assert_parity(
            lambda: tri.sum(
                tri.map(
                    closure(_scale, 4.0),
                    tri.concat_map(closure(_repeat), tri.iterate(XS)),
                )
            )
        )

    def test_filter_collect(self):
        out = _assert_parity(
            lambda: tri.collect_list(
                tri.filter(closure(_is_even), tri.iterate(XS))
            )
        )
        assert out == list(XS[::2])


class TestScalarFallback:
    def test_unregistered_closure_falls_back(self):
        pipeline = tri.map(closure(_no_bulk), tri.iterate(XS))
        assert plan_for(pipeline) is None
        assert planner_stats().unsupported == 1
        _assert_parity(
            lambda: tri.sum(tri.map(closure(_no_bulk), tri.iterate(XS)))
        )

    def test_python_lambda_falls_back(self):
        _assert_parity(lambda: tri.sum(tri.map(lambda x: x * x, tri.iterate(XS))))


class TestPlanCache:
    def test_structure_compiled_once(self):
        def run():
            return tri.sum(tri.map(closure(_scale, 7.0), tri.iterate(XS)))

        with use_vectorization(True):
            run()
            first = planner_stats()
            run()
            second = planner_stats()
        assert first.compiled == 1
        assert second.compiled == 1  # no recompilation
        assert second.hits > first.hits

    def test_same_structure_different_data_shares_plan(self):
        with use_vectorization(True):
            tri.sum(tri.map(closure(_scale, 1.0), tri.iterate(XS)))
            tri.sum(tri.map(closure(_scale, 9.0), tri.iterate(YS * 2.0)))
        assert planner_stats().compiled == 1

    def test_negative_cache_hit(self):
        pipeline = tri.map(closure(_no_bulk), tri.iterate(XS))
        assert plan_for(pipeline) is None
        assert plan_for(pipeline) is None
        stats = planner_stats()
        assert stats.unsupported == 1
        assert stats.hits == 1


class TestChunking:
    def test_tiny_chunks_match_default(self):
        def run():
            return tri.sum(
                tri.map(
                    closure(_scale, 0.25),
                    tri.concat_map(closure(_repeat), tri.iterate(XS)),
                )
            )

        default = chunk_size()
        with use_vectorization(True), meter.metered() as m_big:
            big = run()
        try:
            set_chunk_size(7)
            with use_vectorization(True), meter.metered() as m_small:
                small = run()
        finally:
            set_chunk_size(default)
        assert np.asarray(big).tobytes() == np.asarray(small).tobytes()
        assert m_big == m_small
