"""Fusion-structure tests: the §3.2 story, observable.

The paper's claim: constructor dispatch + inlining reduces any pipeline of
known skeletons to a single loop nest with no temporaries.  Our analogue:
``analyze`` reports the fused structure, and the meter proves execution
makes one pass and materializes nothing.
"""
import numpy as np

import repro.triolet as tri
from repro.core import meter
from repro.core.encodings import materialize_idx
from repro.core.fusion import analyze
from repro.core.iterators import IdxFlat, IdxNest, iterate
from repro.serial import register_function, serialize


@register_function
def pos(x):
    return x > 0


@register_function
def sq(x):
    return x * x


class TestSumOfFilterWalkthrough:
    """sum(filter(pos, xs)) -- the exact example of §3.2."""

    def setup_method(self):
        self.xs = np.array([1.0, -2.0, -4.0, 1.0, 3.0, 4.0])

    def test_input_is_idxflat(self):
        assert analyze(iterate(self.xs)).constructor == "IdxFlat"

    def test_filter_yields_idxnest_of_steppers(self):
        rep = analyze(tri.filter(pos, self.xs))
        assert rep.constructor == "IdxNest"
        assert rep.nest_shape == ("Idx", "Step")
        assert rep.partitionable  # outer loop can still be block-split

    def test_execution_is_single_pass_no_temporaries(self):
        pipeline = tri.filter(pos, self.xs)
        with meter.metered() as m:
            total = tri.sum(pipeline)
        assert total == 9.0
        assert m.materializations == 0
        assert m.passes == 0  # no materialized collection was traversed

    def test_unfused_ablation_materializes(self):
        """The multi-pass version a non-fusing library would run."""
        with meter.metered() as m:
            idx = iterate(self.xs).idx
            values = materialize_idx(idx)  # pass 1: evaluate input
            kept = [x for x in values if pos(x)]  # pass 2: filter
            total = sum(kept)  # pass 3: reduce
        assert total == 9.0
        assert m.materializations >= 1
        assert m.materialized_bytes > 0


class TestFusedStageCounting:
    def test_map_stages_accumulate_in_loop_body(self):
        base = analyze(iterate(np.arange(4.0)))
        once = analyze(tri.map(sq, np.arange(4.0)))
        twice = analyze(tri.map(sq, tri.map(sq, np.arange(4.0))))
        assert base.fused_stages < once.fused_stages < twice.fused_stages

    def test_zip_map_fuses_to_flat_indexer(self):
        """§2's dot product: zip + map + sum stay one flat loop."""
        xs, ys = np.arange(5.0), np.ones(5)
        prod = tri.map(lambda p: p[0] * p[1], tri.zip(xs, ys))
        rep = analyze(prod)
        assert rep.constructor == "IdxFlat"
        assert rep.nest_shape == ("Idx",)
        with meter.metered() as m:
            assert tri.sum(prod) == 10.0
        assert m.materializations == 0

    def test_concat_map_adds_exactly_one_nest_level(self):
        flat = iterate(np.arange(3))
        nested = tri.concat_map(lambda x: np.arange(float(x)), flat)
        assert analyze(nested).depth == 2
        doubly = tri.concat_map(lambda x: np.arange(2.0), nested)
        assert analyze(doubly).depth >= 2

    def test_filter_of_filter_stays_partitionable(self):
        out = tri.filter(pos, tri.filter(pos, np.array([1.0, -1.0, 2.0])))
        rep = analyze(out)
        assert rep.partitionable
        assert tri.collect_list(out) == [1.0, 2.0]


class TestSliceShipping:
    """§3.5: the slice of a fused pipeline ships only its data subset."""

    def test_mapped_pipeline_slice_ships_subset(self):
        xs = np.arange(100_000.0)
        pipeline = tri.map(sq, iterate(xs))
        assert isinstance(pipeline, IdxFlat)
        whole = len(serialize(pipeline))
        part = len(serialize(IdxFlat(pipeline.idx.slice(0, 1000))))
        assert part < whole / 10

    def test_filtered_pipeline_slice_ships_subset(self):
        xs = np.arange(100_000.0)
        pipeline = tri.filter(pos, iterate(xs))
        assert isinstance(pipeline, IdxNest)
        whole = len(serialize(pipeline))
        part = len(serialize(IdxNest(pipeline.idx.slice(0, 1000))))
        assert part < whole / 10

    def test_sliced_pipeline_computes_its_chunk(self):
        xs = np.arange(10.0) - 5.0
        pipeline = tri.filter(pos, iterate(xs))
        left = IdxNest(pipeline.idx.slice(0, 5))
        right = IdxNest(pipeline.idx.slice(5, 10))
        total = tri.sum(left) + tri.sum(right)
        assert total == tri.sum(pipeline) == 1.0 + 2.0 + 3.0 + 4.0

    def test_roundtripped_slice_still_computes(self):
        from repro.serial import deserialize

        xs = np.arange(20.0) - 10.0
        pipeline = tri.map(sq, tri.filter(pos, iterate(xs)))
        chunk = IdxNest(pipeline.idx.slice(10, 20))
        shipped = deserialize(serialize(chunk))
        assert tri.sum(shipped) == sum(x * x for x in range(1, 10))
