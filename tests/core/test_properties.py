"""Property-based tests (hypothesis) for core invariants.

Invariants under test:

* serializer roundtrip is the identity on its supported domain;
* fused skeleton pipelines agree with the obvious Python list semantics
  for every input and pipeline shape;
* slicing an iterator partitions its elements exactly (no loss, no
  duplication) for any block boundaries;
* zip/filter/concat_map obey their algebraic laws.
"""
import numpy as np
from hypothesis import given, settings, strategies as st

import repro.triolet as tri
from repro.core.iterators import IdxFlat, IdxNest, iterate
from repro.serial import deserialize, register_function, serialize

floats = st.floats(allow_nan=False, allow_infinity=False, width=32).map(float)
float_lists = st.lists(floats, max_size=60)
int_lists = st.lists(st.integers(min_value=-100, max_value=100), max_size=60)


@register_function
def _sq(x):
    return x * x


@register_function
def _neg(x):
    return -x


@register_function
def _pos(x):
    return x > 0


@register_function
def _small_range(x):
    return np.arange(float(abs(int(x)) % 5))


scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63),
    floats,
    st.text(max_size=20),
    st.binary(max_size=20),
)
trees = st.recursive(
    scalars,
    lambda leaf: st.one_of(
        st.lists(leaf, max_size=5),
        st.tuples(leaf, leaf),
        st.dictionaries(st.text(max_size=5), leaf, max_size=4),
    ),
    max_leaves=12,
)


class TestSerializerProperties:
    @given(trees)
    @settings(max_examples=150)
    def test_roundtrip_identity(self, obj):
        assert deserialize(serialize(obj)) == obj

    @given(
        st.lists(floats, min_size=0, max_size=50),
        st.sampled_from(["<f8", "<f4", "<i8", "<i4"]),
    )
    def test_array_roundtrip(self, values, dtype):
        clipped = np.clip(np.array(values), -1e9, 1e9)
        arr = clipped.astype(np.dtype(dtype))
        out = deserialize(serialize(arr))
        np.testing.assert_array_equal(out, arr)
        assert out.dtype == arr.dtype


class TestPipelineSemantics:
    @given(int_lists)
    def test_map_matches_list_semantics(self, xs):
        arr = np.array(xs, dtype=np.int64)
        got = tri.collect_list(tri.map(_sq, iterate(arr)))
        assert got == [x * x for x in xs]

    @given(int_lists)
    def test_filter_matches_list_semantics(self, xs):
        arr = np.array(xs, dtype=np.int64)
        got = tri.collect_list(tri.filter(_pos, iterate(arr)))
        assert got == [x for x in xs if x > 0]

    @given(int_lists)
    def test_sum_of_filter_of_map(self, xs):
        arr = np.array(xs, dtype=np.int64)
        got = tri.sum(tri.filter(_pos, tri.map(_neg, iterate(arr))), zero=0)
        assert got == sum(-x for x in xs if -x > 0)

    @given(int_lists, int_lists)
    def test_zip_matches_list_semantics(self, xs, ys):
        a, b = np.array(xs, dtype=np.int64), np.array(ys, dtype=np.int64)
        if len(xs) == 0 and len(ys) == 0:
            return
        got = tri.collect_list(tri.zip(a, b))
        assert got == list(zip(xs, ys))

    @given(int_lists)
    def test_concat_map_matches_list_semantics(self, xs):
        arr = np.array(xs, dtype=np.int64)
        got = tri.collect_list(tri.concat_map(_small_range, iterate(arr)))
        expected = [float(v) for x in xs for v in range(abs(x) % 5)]
        assert got == expected

    @given(int_lists)
    def test_count_equals_len_of_collect(self, xs):
        arr = np.array(xs, dtype=np.int64)
        pipe = tri.concat_map(_small_range, tri.filter(_pos, iterate(arr)))
        assert tri.count(pipe) == len(tri.collect_list(pipe))

    @given(st.lists(st.integers(min_value=0, max_value=9), max_size=60))
    def test_histogram_matches_bincount(self, bins):
        arr = np.array(bins, dtype=np.int64)
        got = tri.histogram(10, iterate(arr))
        np.testing.assert_array_equal(got, np.bincount(arr, minlength=10))


class TestSlicePartitioning:
    @given(
        st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=60),
        st.data(),
    )
    def test_flat_slices_partition_exactly(self, xs, data):
        arr = np.array(xs, dtype=np.int64)
        it = tri.map(_sq, iterate(arr))
        n = len(xs)
        cut = data.draw(st.integers(min_value=0, max_value=n))
        left = IdxFlat(it.idx.slice(0, cut))
        right = IdxFlat(it.idx.slice(cut, n))
        assert (
            tri.collect_list(left) + tri.collect_list(right)
            == tri.collect_list(it)
        )

    @given(
        st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=40),
        st.integers(min_value=1, max_value=8),
    )
    def test_nested_blocks_sum_to_whole(self, xs, nparts):
        arr = np.array(xs, dtype=np.int64)
        it = tri.filter(_pos, iterate(arr))
        n = len(xs)
        bounds = [n * k // nparts for k in range(nparts + 1)]
        total = 0
        for lo, hi in zip(bounds, bounds[1:]):
            total += tri.sum(IdxNest(it.idx.slice(lo, hi)), zero=0)
        assert total == sum(x for x in xs if x > 0)

    @given(st.lists(floats, min_size=1, max_size=40), st.data())
    def test_sliced_pipeline_survives_wire(self, xs, data):
        arr = np.array(xs)
        it = tri.map(_neg, iterate(arr))
        n = len(xs)
        lo = data.draw(st.integers(min_value=0, max_value=n))
        hi = data.draw(st.integers(min_value=lo, max_value=n))
        chunk = IdxFlat(it.idx.slice(lo, hi))
        shipped = deserialize(serialize(chunk))
        assert tri.collect_list(shipped) == [-x for x in xs[lo:hi]]


class TestAlgebraicLaws:
    @given(int_lists)
    def test_filter_commutes_with_map_of_preserving_fn(self, xs):
        # neg is sign-flipping: filter(pos) . map(neg) == map(neg) . filter(neg pos)
        arr = np.array(xs, dtype=np.int64)
        lhs = tri.collect_list(tri.filter(_pos, tri.map(_neg, iterate(arr))))
        rhs = [-x for x in xs if -x > 0]
        assert lhs == rhs

    @given(int_lists)
    def test_map_fusion_law(self, xs):
        # map f . map g == map (f . g)
        arr = np.array(xs, dtype=np.int64)
        lhs = tri.collect_list(tri.map(_sq, tri.map(_neg, iterate(arr))))
        rhs = tri.collect_list(tri.map(lambda x: (-x) * (-x), iterate(arr)))
        assert lhs == rhs

    @given(int_lists)
    def test_sum_linear_in_concatenation(self, xs):
        arr = np.array(xs + xs, dtype=np.int64)
        assert tri.sum(iterate(arr), zero=0) == 2 * sum(xs)
