"""Tests for the hybrid Iter type and Fig. 2 skeletons (sequential)."""
import numpy as np
import pytest

import repro.triolet as tri
from repro.core import meter
from repro.core.domains import Dim2, Seq
from repro.core.iterators import (
    IdxFlat,
    IdxNest,
    StepFlat,
    StepNest,
    ParHint,
    iterate,
    to_step,
)
from repro.serial import register_function


@register_function
def double(x):
    return 2 * x


@register_function
def positive(x):
    return x > 0


@register_function
def expand(x):
    return iterate(np.arange(float(x)))


class TestIterate:
    def test_array_becomes_idxflat(self):
        it = iterate(np.arange(5))
        assert isinstance(it, IdxFlat)
        assert list(it.elements()) == [0, 1, 2, 3, 4]

    def test_range_becomes_idxflat(self):
        it = iterate(range(2, 8, 3))
        assert list(it.elements()) == [2, 5]

    def test_list_becomes_whole_object(self):
        it = iterate(["a", "b"])
        assert isinstance(it, IdxFlat)
        assert list(it.elements()) == ["a", "b"]

    def test_iter_passes_through(self):
        it = iterate(np.arange(3))
        assert iterate(it) is it

    def test_generator_is_materialized(self):
        it = iterate(x * x for x in range(4))
        assert list(it.elements()) == [0, 1, 4, 9]

    def test_non_iterable_rejected(self):
        with pytest.raises(TypeError):
            iterate(42)


class TestFig2Dispatch:
    """Output constructor is a function of the input constructor."""

    def test_map_preserves_constructor(self):
        flat = iterate(np.arange(3.0))
        assert isinstance(tri.map(double, flat), IdxFlat)
        nest = tri.filter(positive, flat)
        assert isinstance(nest, IdxNest)
        assert isinstance(tri.map(double, nest), IdxNest)

    def test_filter_on_idxflat_gives_idxnest(self):
        out = tri.filter(positive, iterate(np.array([1.0, -1.0])))
        assert isinstance(out, IdxNest)

    def test_filter_on_stepflat_stays_stepflat(self):
        st = StepFlat(to_step(iterate(np.array([1.0, -2.0, 3.0]))))
        out = tri.filter(positive, st)
        assert isinstance(out, StepFlat)
        assert list(out.elements()) == [1.0, 3.0]

    def test_concat_map_on_idxflat_gives_idxnest(self):
        out = tri.concat_map(expand, iterate(np.array([2, 3])))
        assert isinstance(out, IdxNest)
        assert list(out.elements()) == [0.0, 1.0, 0.0, 1.0, 2.0]

    def test_concat_map_on_stepnest(self):
        base = tri.concat_map(expand, StepFlat(to_step(iterate(np.array([2])))))
        assert isinstance(base, StepNest)
        out = tri.concat_map(expand, base)
        assert isinstance(out, StepNest)
        assert list(out.elements()) == [0.0]  # expand(0)=[], expand(1)=[0]

    def test_zip_of_idxflats_stays_idxflat(self):
        z = tri.zip(np.arange(3), np.arange(3) * 10)
        assert isinstance(z, IdxFlat)
        assert list(z.elements()) == [(0, 0), (1, 10), (2, 20)]

    def test_zip_with_irregular_falls_to_stepflat(self):
        filtered = tri.filter(positive, np.array([1.0, -5.0, 2.0]))
        z = tri.zip(filtered, np.array([10.0, 20.0]))
        assert isinstance(z, StepFlat)
        assert list(z.elements()) == [(1.0, 10.0), (2.0, 20.0)]

    def test_zip3(self):
        z = tri.zip(np.arange(2), np.arange(2) + 10, np.arange(2) + 100)
        assert list(z.elements()) == [(0, 10, 100), (1, 11, 101)]

    def test_nested_filter_of_concat_map(self):
        nested = tri.concat_map(expand, np.array([3, 2]))
        out = tri.filter(positive, nested)
        assert isinstance(out, IdxNest)
        assert list(out.elements()) == [1.0, 2.0, 1.0]


class TestConsumers:
    def test_sum_flat(self):
        assert tri.sum(np.arange(5.0)) == 10.0

    def test_sum_uses_bulk_fast_path(self):
        xs = np.arange(1000.0)
        with meter.metered() as m:
            total = tri.sum(xs)
        assert total == 499500.0
        assert m.visits == 1000
        assert m.lookups == 0  # bulk path, no per-element lookup

    def test_sum_of_filter_is_fused_single_pass(self):
        """The §3.2 walkthrough: sum(filter(positive, xs))."""
        xs = np.array([1.0, -2.0, -4.0, 1.0, 3.0, 4.0])
        with meter.metered() as m:
            total = tri.sum(tri.filter(positive, xs))
        assert total == 9.0
        assert m.materializations == 0

    def test_sum_of_mapped(self):
        assert tri.sum(tri.map(double, np.arange(4.0))) == 12.0

    def test_reduce_with_custom_op(self):
        out = tri.reduce(lambda a, b: a * b, 1.0, np.array([2.0, 3.0, 4.0]))
        assert out == 24.0

    def test_min_max(self):
        xs = np.array([3.0, -1.0, 7.0])
        assert tri.min(xs) == -1.0
        assert tri.max(xs) == 7.0

    def test_count_nested(self):
        out = tri.concat_map(expand, np.array([2, 0, 3]))
        assert tri.count(out) == 5

    def test_histogram_plain_bins(self):
        h = tri.histogram(4, iterate(np.array([0, 1, 1, 3, 3, 3])))
        np.testing.assert_array_equal(h, [1, 2, 0, 3])

    def test_histogram_weighted(self):
        values = tri.map(lambda i: (int(i) % 2, float(i)), np.arange(4))
        h = tri.histogram(2, values)
        np.testing.assert_allclose(h, [2.0, 4.0])  # 0+2, 1+3

    def test_histogram_vectorized_contributions(self):
        # Each element contributes a whole (bins, weights) pair of arrays.
        def contrib(i):
            return (np.array([0, 1]), np.array([float(i), 1.0]))

        values = tri.map(contrib, np.arange(3))
        h = tri.histogram(2, values)
        np.testing.assert_allclose(h, [3.0, 3.0])

    def test_collect_list_flattens(self):
        out = tri.concat_map(expand, np.array([2, 1]))
        assert tri.collect_list(out) == [0.0, 1.0, 0.0]

    def test_build_1d(self):
        arr = tri.build(tri.map(double, np.arange(3.0)))
        np.testing.assert_array_equal(arr, [0.0, 2.0, 4.0])

    def test_build_dim2(self):
        it = tri.map(lambda yx: float(yx[0] * 10 + yx[1]), tri.arrayRange((3, 2)))
        arr = tri.build(it)
        assert arr.shape == (3, 2)
        np.testing.assert_array_equal(arr, [[0, 1], [10, 11], [20, 21]])

    def test_transpose_via_array_range(self):
        A = np.arange(6.0).reshape(2, 3)
        h, w = A.shape
        T = tri.build(
            tri.map(lambda yx: A[yx[1], yx[0]], tri.arrayRange((w, h)))
        )
        np.testing.assert_array_equal(T, A.T)

    def test_sum_empty(self):
        assert tri.sum(np.array([])) == 0.0

    def test_sum_of_filter_all_removed(self):
        assert tri.sum(tri.filter(positive, np.array([-1.0, -2.0]))) == 0.0


class TestHints:
    def test_par_sets_flag(self):
        it = tri.par(np.arange(3))
        assert it.hint is ParHint.PAR

    def test_localpar_sets_flag(self):
        assert tri.localpar(np.arange(3)).hint is ParHint.LOCAL

    def test_seq_clears_flag(self):
        assert tri.seq(tri.par(np.arange(3))).hint is ParHint.SEQ

    def test_map_preserves_hint(self):
        it = tri.map(double, tri.par(np.arange(3)))
        assert it.hint is ParHint.PAR

    def test_filter_preserves_hint(self):
        it = tri.filter(positive, tri.par(np.arange(3.0)))
        assert it.hint is ParHint.PAR

    def test_zip_joins_hints(self):
        z = tri.zip(tri.par(np.arange(3)), np.arange(3))
        assert z.hint is ParHint.PAR

    def test_hinted_sum_without_runtime_is_sequential(self):
        # No runtime installed: par loops still compute correct results.
        assert tri.sum(tri.par(np.arange(10.0))) == 45.0


class TestRowsAndOuterProduct:
    def test_rows_elements_are_row_views(self):
        A = np.arange(6.0).reshape(3, 2)
        rws = list(tri.rows(A).elements())
        assert len(rws) == 3
        np.testing.assert_array_equal(rws[1], [2.0, 3.0])

    def test_cols(self):
        A = np.arange(6.0).reshape(3, 2)
        cls = list(tri.cols(A).elements())
        assert len(cls) == 2
        np.testing.assert_array_equal(cls[0], [0.0, 2.0, 4.0])

    def test_outerproduct_domain(self):
        A = np.zeros((4, 3))
        B = np.zeros((5, 3))
        op = tri.outerproduct(tri.rows(A), tri.rows(B))
        assert op.domain == Dim2(4, 5)

    def test_two_line_sgemm(self):
        """The paper's §2 matrix-multiply in two lines."""
        rng = np.random.default_rng(0)
        A = rng.standard_normal((4, 6))
        B = rng.standard_normal((6, 5))
        BT = B.T.copy()

        zipped_AB = tri.outerproduct(tri.rows(A), tri.rows(BT))
        AB = tri.build(tri.map(lambda uv: float(uv[0] @ uv[1]), zipped_AB))

        np.testing.assert_allclose(AB, A @ B, rtol=1e-12)

    def test_rows_requires_2d(self):
        with pytest.raises(ValueError):
            tri.rows(np.arange(5))

    def test_outerproduct_rejects_irregular(self):
        filtered = tri.filter(positive, np.array([1.0, -1.0]))
        with pytest.raises(TypeError):
            tri.outerproduct(filtered, np.arange(3))

    def test_domain_and_indices(self):
        xs = np.arange(7.0)
        assert tri.domain(xs) == Seq(7)
        assert tri.collect_list(tri.indices(tri.domain(xs))) == list(range(7))
