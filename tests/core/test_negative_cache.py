"""The planner's negative cache is bounded (LRU over unsupported shapes).

A long-running program that keeps generating structurally distinct
unsupported pipelines (fresh lambdas, dynamic closures) must not grow
planner state without limit; the negative set holds at most
``NEGATIVE_CACHE_MAX`` entries and evicts least-recently-seen shapes.
"""
import numpy as np
import pytest

import repro.triolet as tri
from repro.core.fusion import (
    NEGATIVE_CACHE_MAX,
    negative_cache_size,
    plan_for,
    planner_stats,
    reset_planner,
)
from repro.serial import closure

XS = np.arange(16.0)


@pytest.fixture(autouse=True)
def _fresh_planner():
    reset_planner()
    yield
    reset_planner()


def _unsupported_pipeline(i: int):
    """A pipeline whose structural key is unique to *i* and whose
    mapped function has no bulk form (so compilation fails)."""

    def f(x):
        return x + i

    f.__qualname__ = f.__name__ = f"_negcache_probe_{i}"
    return tri.map(closure(f), tri.iterate(XS))


class TestNegativeCacheBound:
    def test_distinct_unsupported_shapes_are_capped(self):
        n = NEGATIVE_CACHE_MAX + 40
        for i in range(n):
            assert plan_for(_unsupported_pipeline(i)) is None
        stats = planner_stats()
        assert stats.unsupported == n
        assert negative_cache_size() == NEGATIVE_CACHE_MAX
        assert stats.negative_evictions == 40

    def test_lru_keeps_recent_shapes(self):
        pipelines = [_unsupported_pipeline(i)
                     for i in range(NEGATIVE_CACHE_MAX + 1)]
        for p in pipelines:
            plan_for(p)
        # The newest shape is a negative-cache hit (no recompile attempt)
        # while the oldest was evicted and gets re-analyzed.
        before = planner_stats().unsupported
        plan_for(pipelines[-1])
        assert planner_stats().unsupported == before
        plan_for(pipelines[0])
        assert planner_stats().unsupported == before + 1

    def test_reset_clears_the_negative_set(self):
        plan_for(_unsupported_pipeline(0))
        assert negative_cache_size() == 1
        reset_planner()
        assert negative_cache_size() == 0
