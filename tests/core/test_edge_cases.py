"""Edge-case coverage for less-travelled paths across the core."""
import numpy as np
import pytest

import repro.triolet as tri
from repro.core.domains import Seq
from repro.core.encodings.indexer import whole_list_indexer
from repro.core.fusion import analyze
from repro.core.iterators import (
    IdxNest,
    StepFlat,
    StepNest,
    iterate,
    to_step,
)
from repro.core.iterators.transforms import tzip
from repro.serial import register_function


@register_function
def _pos(x):
    return x > 0


class TestArrayRangeEdges:
    def test_1d_form(self):
        assert tri.collect_list(tri.arrayRange(4)) == [0, 1, 2, 3]

    def test_explicit_lo(self):
        out = tri.collect_list(tri.arrayRange((0, 0), (2, 2)))
        assert out == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_nonzero_lo_unsupported(self):
        with pytest.raises(NotImplementedError):
            tri.arrayRange((1, 0), (2, 2))

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            tri.arrayRange((0, 0), (2, 2, 2))

    def test_4d_unsupported(self):
        with pytest.raises(NotImplementedError):
            tri.arrayRange((1, 1, 1, 1))

    def test_negative_extent_clamped(self):
        assert tri.collect_list(tri.arrayRange(-3)) == []


class TestZipEdges:
    def test_single_operand_rejected(self):
        with pytest.raises(ValueError):
            tzip(np.arange(3))

    def test_zip_four_streams(self):
        out = tri.collect_list(
            tri.zip(np.arange(2), np.arange(2) + 10, np.arange(2) + 20, np.arange(2) + 30)
        )
        assert out == [(0, 10, 20, 30), (1, 11, 21, 31)]

    def test_zip_empty_with_nonempty(self):
        assert tri.collect_list(tri.zip(np.array([]), np.arange(5))) == []


class TestDomainHelpers:
    def test_domain_of_list_and_tuple(self):
        assert tri.domain([1, 2, 3]) == Seq(3)
        assert tri.domain((1, 2)) == Seq(2)

    def test_domain_of_domain_is_identity(self):
        d = Seq(4)
        assert tri.domain(d) is d

    def test_domain_of_unsupported(self):
        with pytest.raises(TypeError):
            tri.domain(42)

    def test_whole_list_indexer_explicit_length(self):
        idx = whole_list_indexer([9, 8, 7, 6], n=2)
        assert idx.size == 2
        assert idx.lookup(1) == 8


class TestAnalyzeEdges:
    def test_stepflat_report(self):
        st = StepFlat(to_step(tri.filter(_pos, np.array([1.0, -1.0]))))
        rep = analyze(st)
        assert rep.constructor == "StepFlat"
        assert not rep.partitionable
        assert rep.source_bytes == 0

    def test_stepnest_probe(self):
        nested = tri.concat_map(
            lambda x: np.arange(2.0), StepFlat(to_step(iterate(np.arange(3.0))))
        )
        assert isinstance(nested, StepNest)
        rep = analyze(nested)
        assert rep.nest_shape[0] == "Step"

    def test_empty_outer_nest_is_unknown(self):
        empty_nest = tri.filter(_pos, np.array([]))
        assert isinstance(empty_nest, IdxNest)
        rep = analyze(empty_nest)
        assert rep.nest_shape == ("Idx", "?")

    def test_describe_is_stringy(self):
        rep = analyze(iterate(np.arange(3)))
        assert "partitionable" in rep.describe()


class TestConsumerEdges:
    def test_reduce_over_empty_returns_init(self):
        assert tri.reduce(lambda a, b: a + b, 42, np.array([])) == 42

    def test_histogram_int_dtype(self):
        h = tri.histogram(3, iterate(np.array([0, 2, 2])), dtype=np.int64)
        assert h.dtype == np.int64
        np.testing.assert_array_equal(h, [1, 0, 2])

    def test_min_max_empty_give_identities(self):
        assert tri.min(np.array([])) == np.inf
        assert tri.max(np.array([])) == -np.inf

    def test_build_of_empty(self):
        out = tri.build(tri.map(lambda x: x, np.array([])))
        assert out.size == 0

    def test_sum_of_rows_adds_arrays(self):
        A = np.arange(6.0).reshape(3, 2)
        out = tri.sum(tri.rows(A), zero=np.zeros(2))
        np.testing.assert_array_equal(out, A.sum(axis=0))

    def test_nested_sum_over_stepnest(self):
        base = StepFlat(to_step(iterate(np.array([2.0, 3.0]))))
        nested = tri.concat_map(lambda x: np.full(int(x), x), base)
        assert tri.sum(nested) == pytest.approx(2 * 2.0 + 3 * 3.0)
