"""Property-based tests: stepper combinators obey the list laws.

Steppers are the sequential workhorse encoding; these laws pin their
semantics to Python's list operations for arbitrary inputs and
combinator stacks.
"""
from hypothesis import given, strategies as st

from repro.core.encodings.stepper import (
    concat_map_step,
    filter_step,
    fold_step,
    map_step,
    stepper_from_list,
    unit_stepper,
    zip_step,
)
from repro.serial import register_function

ints = st.lists(st.integers(-30, 30), max_size=40)


@register_function
def _inc(x):
    return x + 1


@register_function
def _even(x):
    return x % 2 == 0


@register_function
def _replicate(x):
    return stepper_from_list([x] * (abs(x) % 4))


class TestListLaws:
    @given(ints)
    def test_to_list_is_identity(self, xs):
        assert stepper_from_list(xs).to_list() == xs

    @given(ints)
    def test_map_law(self, xs):
        got = map_step(_inc, stepper_from_list(xs)).to_list()
        assert got == [x + 1 for x in xs]

    @given(ints)
    def test_filter_law(self, xs):
        got = filter_step(_even, stepper_from_list(xs)).to_list()
        assert got == [x for x in xs if x % 2 == 0]

    @given(ints)
    def test_map_filter_compose(self, xs):
        st1 = map_step(_inc, filter_step(_even, stepper_from_list(xs)))
        assert st1.to_list() == [x + 1 for x in xs if x % 2 == 0]

    @given(ints)
    def test_concat_map_law(self, xs):
        got = concat_map_step(_replicate, stepper_from_list(xs)).to_list()
        assert got == [x for x in xs for _ in range(abs(x) % 4)]

    @given(ints, ints)
    def test_zip_law(self, xs, ys):
        got = zip_step(stepper_from_list(xs), stepper_from_list(ys)).to_list()
        assert got == list(zip(xs, ys))

    @given(ints, ints)
    def test_zip_of_filtered_streams(self, xs, ys):
        fx = filter_step(_even, stepper_from_list(xs))
        fy = filter_step(_even, stepper_from_list(ys))
        got = zip_step(fx, fy).to_list()
        expected = list(
            zip([x for x in xs if x % 2 == 0], [y for y in ys if y % 2 == 0])
        )
        assert got == expected

    @given(ints)
    def test_fold_equals_sum(self, xs):
        got = fold_step(lambda a, x: a + x, 0, stepper_from_list(xs))
        assert got == sum(xs)

    @given(st.integers(-5, 5))
    def test_unit_is_singleton(self, x):
        assert unit_stepper(x).to_list() == [x]

    @given(ints)
    def test_steppers_are_restartable(self, xs):
        """A Step value is immutable: driving it twice gives the same list."""
        stp = map_step(_inc, stepper_from_list(xs))
        assert stp.to_list() == stp.to_list()

    @given(ints)
    def test_deeply_stacked_combinators(self, xs):
        stp = stepper_from_list(xs)
        for _ in range(5):
            stp = map_step(_inc, filter_step(_even, stp))
        expected = xs
        for _ in range(5):
            expected = [x + 1 for x in expected if x % 2 == 0]
        assert stp.to_list() == expected
