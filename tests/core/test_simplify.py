"""The symbolic §3.2 derivation agrees with the paper and the runtime."""
import numpy as np

import repro.triolet as tri
from repro.core.fusion import analyze
from repro.core.fusion.simplify import (
    T,
    Term,
    apply_consumer,
    apply_skeleton,
    derive,
    final_form,
)
from repro.core.iterators import iterate
from repro.serial import register_function


@register_function
def _f(x):
    return x > 0


class TestFig2Equations:
    def test_filter_on_idxflat(self):
        out = apply_skeleton("filter", T("IdxFlat", "ys"), "f")
        assert out.head == "IdxNest"
        assert "filterStep f" in str(out)
        assert "unitStep" in str(out)

    def test_filter_on_stepflat(self):
        out = apply_skeleton("filter", T("StepFlat", "xs"), "f")
        assert out.head == "StepFlat"

    def test_filter_on_nests_recurses(self):
        assert apply_skeleton("filter", T("IdxNest", "xss"), "f").head == "IdxNest"
        assert apply_skeleton("filter", T("StepNest", "xss"), "f").head == "StepNest"

    def test_concat_map_adds_nesting(self):
        assert apply_skeleton("concatMap", T("IdxFlat", "xs"), "f").head == "IdxNest"
        assert apply_skeleton("concatMap", T("StepFlat", "xs"), "f").head == "StepNest"

    def test_consumer_on_flat(self):
        assert apply_consumer("sum", T("IdxFlat", "xs")).head == "sumIdx"
        assert apply_consumer("sum", T("StepFlat", "xs")).head == "sumStep"


class TestPaperWalkthrough:
    """sum (filter f (IdxFlat ys)) -- the exact §3.2 chain."""

    def test_derivation_chain(self):
        chain = derive("ys", [("filter", "f")], "sum")
        assert len(chain) == 3
        # Step 1: the unreduced expression.
        assert chain[0].startswith("sum (filter f")
        # Step 2: filter reduced to an IdxNest of one-element steppers.
        assert "IdxNest" in chain[1]
        assert "unitStep" in chain[1]
        # Step 3: the paper's final form.
        assert chain[2].startswith("sumIdx")
        assert "sumStep" in chain[2]
        assert "filterStep f" in chain[2]
        assert "unitStep" in chain[2]
        # Iterator constructors are completely eliminated.
        for ctor in ("IdxFlat", "IdxNest", "StepFlat", "StepNest"):
            assert ctor not in chain[2]

    def test_final_form_matches_paper(self):
        final = final_form("ys", [("filter", "f")], "sum")
        assert final == "sumIdx (mapIdx (compose sumStep filterStep f unitStep) ys)"

    def test_symbolic_agrees_with_runtime_dispatch(self):
        """The symbolic head at each stage matches the live constructors."""
        xs = np.array([1.0, -2.0, 3.0])
        live = tri.filter(_f, iterate(xs))
        symbolic = apply_skeleton("filter", T("IdxFlat", "xs"), "f")
        assert live.constructor == symbolic.head
        live2 = tri.concat_map(lambda x: np.arange(2.0), live)
        symbolic2 = apply_skeleton("concatMap", symbolic, "g")
        assert live2.constructor == symbolic2.head

    def test_nest_shape_agrees_with_analyze(self):
        xs = np.array([1.0, -2.0, 3.0])
        live = analyze(tri.filter(_f, iterate(xs)))
        symbolic = apply_skeleton("filter", T("IdxFlat", "xs"), "f")
        assert live.nest_shape == ("Idx", "Step")
        assert symbolic.head == "IdxNest"  # Idx outer, Step inner


class TestTermRendering:
    def test_leaf(self):
        assert str(T("IdxFlat", "xs")) == "IdxFlat xs"

    def test_nested_parenthesized(self):
        t = T("sumIdx", T("mapIdx", "f", "xs"))
        assert str(t) == "sumIdx (mapIdx f xs)"

    def test_errors(self):
        import pytest

        with pytest.raises(ValueError):
            apply_skeleton("filter", T("sumIdx", "xs"))
        with pytest.raises(ValueError):
            apply_skeleton("transmogrify", T("IdxFlat", "xs"))
        with pytest.raises(ValueError):
            apply_consumer("sum", Term("bogus"))
