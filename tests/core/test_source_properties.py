"""Property-based tests for data-source slicing laws (hypothesis).

The runtime composes slices (node chunk -> core task -> nested region);
these laws keep that composition sound:

* slice-of-slice == composed slice (for every source kind);
* a slice's context yields exactly the elements of the original range;
* wire size is monotone in slice width for sliceable sources, and
  constant for replicated/whole-object sources.
"""
import numpy as np
from hypothesis import given, strategies as st

from repro.core.encodings.indexer import (
    array_indexer,
    index_indexer,
    outer_product_idx,
    range_indexer,
    whole_list_indexer,
    zip_idx,
)
from repro.core.domains import Dim2
from repro.serial import serialize


@st.composite
def nested_ranges(draw, n_max=60):
    n = draw(st.integers(1, n_max))
    lo1 = draw(st.integers(0, n))
    hi1 = draw(st.integers(lo1, n))
    width = hi1 - lo1
    lo2 = draw(st.integers(0, width))
    hi2 = draw(st.integers(lo2, width))
    return n, (lo1, hi1), (lo2, hi2)


def values_of(idx):
    ctx = idx.source.context()
    return [idx.extract(ctx, i) for i in idx.domain.iter_indices()]


class TestSliceComposition:
    @given(nested_ranges())
    def test_array_slice_of_slice(self, spec):
        n, (lo1, hi1), (lo2, hi2) = spec
        idx = array_indexer(np.arange(float(n)))
        twice = idx.slice(lo1, hi1).slice(lo2, hi2)
        once = idx.slice(lo1 + lo2, lo1 + hi2)
        assert values_of(twice) == values_of(once)

    @given(nested_ranges())
    def test_range_slice_of_slice(self, spec):
        n, (lo1, hi1), (lo2, hi2) = spec
        idx = range_indexer(n, start=5, step=3)
        twice = idx.slice(lo1, hi1).slice(lo2, hi2)
        once = idx.slice(lo1 + lo2, lo1 + hi2)
        assert values_of(twice) == values_of(once)

    @given(nested_ranges())
    def test_index_slice_stays_global(self, spec):
        n, (lo1, hi1), (lo2, hi2) = spec
        from repro.core.domains import Seq

        idx = index_indexer(Seq(n))
        twice = idx.slice(lo1, hi1).slice(lo2, hi2)
        assert values_of(twice) == list(range(lo1 + lo2, lo1 + hi2))

    @given(nested_ranges())
    def test_whole_object_slice_of_slice(self, spec):
        n, (lo1, hi1), (lo2, hi2) = spec
        idx = whole_list_indexer(list(range(n)))
        twice = idx.slice(lo1, hi1).slice(lo2, hi2)
        assert values_of(twice) == list(range(lo1 + lo2, lo1 + hi2))

    @given(nested_ranges())
    def test_zip_slice_of_slice(self, spec):
        n, (lo1, hi1), (lo2, hi2) = spec
        idx = zip_idx(array_indexer(np.arange(n)), range_indexer(n, start=100))
        twice = idx.slice(lo1, hi1).slice(lo2, hi2)
        once = idx.slice(lo1 + lo2, lo1 + hi2)
        assert values_of(twice) == values_of(once)


class TestBlockComposition:
    @given(
        st.integers(1, 12),
        st.integers(1, 12),
        st.data(),
    )
    def test_outer_product_block_of_block(self, h, w, data):
        u = array_indexer(np.arange(float(h)))
        v = array_indexer(np.arange(float(w)) + 100)
        op = outer_product_idx(u, v)
        y1 = sorted((data.draw(st.integers(0, h)), data.draw(st.integers(0, h))))
        x1 = sorted((data.draw(st.integers(0, w)), data.draw(st.integers(0, w))))
        block = op.slice_block(tuple(y1), tuple(x1))
        assert isinstance(block.domain, Dim2)
        expected = [
            (float(y1[0] + dy), float(100 + x1[0] + dx))
            for dy in range(y1[1] - y1[0])
            for dx in range(x1[1] - x1[0])
        ]
        assert values_of(block) == expected


class TestWireSizeLaws:
    @given(st.integers(1, 2000), st.data())
    def test_array_wire_size_monotone(self, n, data):
        idx = array_indexer(np.arange(float(n)))
        cut = data.draw(st.integers(0, n))
        small = len(serialize(idx.slice(0, cut)))
        whole = len(serialize(idx))
        assert small <= whole + 8

    @given(st.integers(1, 500), st.data())
    def test_whole_object_wire_size_constant(self, n, data):
        idx = whole_list_indexer(list(range(n)))
        lo = data.draw(st.integers(0, n))
        hi = data.draw(st.integers(lo, n))
        sliced = len(serialize(idx.slice(lo, hi)))
        whole = len(serialize(idx))
        assert abs(sliced - whole) <= 8  # only the offset varint differs
