"""Tests for the extended skeleton library (scan, take/drop, keyed ops)."""
import numpy as np
import pytest
from hypothesis import given, strategies as st

import repro.triolet as tri
from repro.cluster.machine import MachineSpec
from repro.core import meter
from repro.core.iterators import StepFlat, iterate, to_step
from repro.runtime import triolet_runtime
from repro.serial import register_function

MACHINE = MachineSpec(nodes=4, cores_per_node=4)

int_lists = st.lists(st.integers(min_value=-50, max_value=50), max_size=40)


@register_function
def pos(x):
    return x > 0


@register_function
def parity(x):
    return int(x) % 2


@register_function
def add(a, b):
    return a + b


class TestEnumerate:
    def test_flat(self):
        out = tri.collect_list(tri.enumerate(np.array([5.0, 7.0])))
        assert out == [(0, 5.0), (1, 7.0)]

    def test_flat_stays_partitionable(self):
        assert tri.enumerate(np.arange(4)).constructor == "IdxFlat"

    def test_irregular(self):
        filtered = tri.filter(pos, np.array([3.0, -1.0, 4.0]))
        out = tri.collect_list(tri.enumerate(StepFlat(to_step(filtered))))
        assert out == [(0, 3.0), (1, 4.0)]

    @given(int_lists)
    def test_matches_builtin(self, xs):
        arr = np.array(xs, dtype=np.int64)
        got = tri.collect_list(tri.enumerate(iterate(arr)))
        assert got == list(enumerate(xs))


class TestTakeDrop:
    def test_take_flat_is_a_slice(self):
        out = tri.take(3, np.arange(10))
        assert out.constructor == "IdxFlat"
        assert tri.collect_list(out) == [0, 1, 2]

    def test_take_more_than_length(self):
        assert tri.collect_list(tri.take(99, np.arange(3))) == [0, 1, 2]

    def test_drop_flat(self):
        assert tri.collect_list(tri.drop(7, np.arange(10))) == [7, 8, 9]

    def test_take_from_filtered_stream(self):
        filtered = tri.filter(pos, np.arange(10.0) - 5.0)
        out = tri.take(2, StepFlat(to_step(filtered)))
        assert tri.collect_list(out) == [1.0, 2.0]

    def test_drop_from_filtered_stream(self):
        filtered = tri.filter(pos, np.arange(10.0) - 5.0)
        out = tri.drop(2, StepFlat(to_step(filtered)))
        assert tri.collect_list(out) == [3.0, 4.0]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            tri.take(-1, np.arange(3))
        with pytest.raises(ValueError):
            tri.drop(-1, np.arange(3))

    @given(int_lists, st.integers(0, 50))
    def test_take_drop_partition(self, xs, n):
        arr = np.array(xs, dtype=np.int64)
        taken = tri.collect_list(tri.take(n, iterate(arr)))
        dropped = tri.collect_list(tri.drop(n, iterate(arr)))
        assert taken + dropped == xs


class TestAppendScan:
    def test_append(self):
        out = tri.collect_list(tri.append(np.arange(2), np.arange(3) + 10))
        assert out == [0, 1, 10, 11, 12]

    def test_append_empty_sides(self):
        assert tri.collect_list(tri.append(np.array([]), np.array([1.0]))) == [1.0]
        assert tri.collect_list(tri.append(np.array([1.0]), np.array([]))) == [1.0]

    def test_scan_inclusive(self):
        out = tri.collect_list(tri.scan(add, 0, np.array([1, 2, 3, 4])))
        assert out == [1, 3, 6, 10]

    def test_scan_over_filtered(self):
        out = tri.collect_list(tri.scan(add, 0.0, tri.filter(pos, np.array([1.0, -9.0, 2.0]))))
        assert out == [1.0, 3.0]

    def test_scan_is_fused_single_pass(self):
        with meter.metered() as m:
            tri.collect_list(tri.scan(add, 0, np.arange(100)))
        assert m.materializations == 0

    @given(int_lists)
    def test_scan_matches_cumsum(self, xs):
        arr = np.array(xs, dtype=np.int64)
        got = tri.collect_list(tri.scan(add, 0, iterate(arr)))
        assert got == list(np.cumsum(xs)) if xs else got == []

    def test_prefix_sum_matches_cumsum(self):
        xs = np.random.default_rng(0).standard_normal(1000)
        np.testing.assert_allclose(tri.prefix_sum(xs), np.cumsum(xs), rtol=1e-9)

    def test_prefix_sum_is_multipass(self):
        """§3.1: the parallel scan cannot fuse -- two passes, temporaries."""
        with meter.metered() as m:
            tri.prefix_sum(np.arange(1000.0))
        assert m.passes == 2
        assert m.materializations >= 1

    def test_prefix_sum_empty(self):
        assert tri.prefix_sum(np.array([])).size == 0

    @given(st.lists(st.floats(-100, 100), max_size=50), st.integers(1, 8))
    def test_prefix_sum_any_blocking(self, xs, nblocks):
        arr = np.array(xs)
        np.testing.assert_allclose(
            tri.prefix_sum(arr, nblocks=nblocks), np.cumsum(arr), atol=1e-9
        )


class TestShortCircuit:
    def test_find_first(self):
        assert tri.find_first(pos, np.array([-1.0, -2.0, 5.0, 7.0])) == 5.0

    def test_find_first_default(self):
        assert tri.find_first(pos, np.array([-1.0]), default="none") == "none"

    def test_find_first_stops_early(self):
        with meter.metered() as m:
            tri.find_first(pos, np.concatenate([[-1.0, 3.0], np.zeros(10_000)]))
        assert m.steps < 100  # did not walk the zeros

    def test_any_all(self):
        xs = np.array([-1.0, 2.0, -3.0])
        assert tri.any_match(pos, xs)
        assert not tri.all_match(pos, xs)
        assert tri.all_match(pos, np.array([1.0, 2.0]))
        assert not tri.any_match(pos, np.array([-1.0]))

    def test_empty_semantics(self):
        assert not tri.any_match(pos, np.array([]))
        assert tri.all_match(pos, np.array([]))


class TestKeyedAndStats:
    def test_group_reduce(self):
        out = tri.group_reduce(parity, add, np.arange(10))
        assert out == {0: 0 + 2 + 4 + 6 + 8, 1: 1 + 3 + 5 + 7 + 9}

    def test_group_reduce_parallel_matches_sequential(self):
        xs = np.arange(500)
        seq = tri.group_reduce(parity, add, xs)
        with triolet_runtime(MACHINE):
            par = tri.group_reduce(parity, add, tri.par(xs))
        assert par == seq

    def test_group_reduce_empty(self):
        assert tri.group_reduce(parity, add, np.array([])) == {}

    def test_mean_variance(self):
        xs = np.array([1.0, 2.0, 3.0, 4.0])
        mean, var = tri.mean_variance(xs)
        assert mean == pytest.approx(2.5)
        assert var == pytest.approx(np.var(xs))

    def test_mean_variance_parallel(self):
        rng = np.random.default_rng(1)
        xs = rng.standard_normal(2000) * 3 + 7
        with triolet_runtime(MACHINE):
            mean, var = tri.mean_variance(tri.par(xs))
        assert mean == pytest.approx(np.mean(xs))
        assert var == pytest.approx(np.var(xs))

    def test_mean_variance_empty_raises(self):
        with pytest.raises(ValueError):
            tri.mean_variance(np.array([]))

    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=60))
    def test_welford_matches_numpy(self, xs):
        arr = np.array(xs)
        mean, var = tri.mean_variance(arr)
        assert mean == pytest.approx(np.mean(arr), abs=1e-6)
        assert var == pytest.approx(np.var(arr), abs=1e-6)

    def test_argmin_argmax(self):
        xs = np.array([3.0, -1.0, 7.0, -1.0, 7.0])
        assert tri.argmin(xs) == 1  # first of the ties
        assert tri.argmax(xs) == 2

    def test_arg_parallel_matches_sequential(self):
        rng = np.random.default_rng(2)
        xs = rng.permutation(1000).astype(float)
        with triolet_runtime(MACHINE):
            i = tri.argmax(tri.par(xs))
        assert xs[i] == 999.0

    def test_arg_empty_raises(self):
        with pytest.raises(ValueError):
            tri.argmin(np.array([]))
