"""Direct tests for the Domain hierarchy (Seq, Dim2, Dim3)."""
import numpy as np
import pytest
from hypothesis import given, strategies as st

import repro.triolet as tri
from repro.cluster.machine import MachineSpec
from repro.core.domains import Dim2, Dim3, DomainMismatchError, Seq
from repro.runtime import triolet_runtime
from repro.serial import deserialize, serialize


class TestSeq:
    def test_basic(self):
        d = Seq(5)
        assert d.size == 5 and d.outer_extent == 5 and len(d) == 5
        assert list(d.iter_indices()) == [0, 1, 2, 3, 4]

    def test_outer_block(self):
        assert Seq(10).outer_block(3, 7) == Seq(4)

    def test_intersect(self):
        assert Seq(3).intersect(Seq(7)) == Seq(3)

    def test_mismatch(self):
        with pytest.raises(DomainMismatchError):
            Seq(3).intersect(Dim2(2, 2))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Seq(-1)

    def test_empty(self):
        assert Seq(0).is_empty
        assert list(Seq(0).iter_indices()) == []

    def test_bounds_checked(self):
        with pytest.raises(IndexError):
            Seq(3).outer_block(2, 5)

    def test_serializable(self):
        assert deserialize(serialize(Seq(9))) == Seq(9)

    @given(st.integers(0, 100), st.integers(0, 100), st.integers(0, 100))
    def test_block_size_law(self, n, a, b):
        lo, hi = sorted((min(a, n), min(b, n)))
        assert Seq(n).outer_block(lo, hi).size == hi - lo


class TestDim2:
    def test_row_major_order(self):
        assert list(Dim2(2, 3).iter_indices()) == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2),
        ]

    def test_sizes(self):
        d = Dim2(4, 5)
        assert d.size == 20 and d.outer_extent == 4

    def test_blocks(self):
        assert Dim2(6, 4).outer_block(2, 5) == Dim2(3, 4)
        assert Dim2(6, 4).inner_block(1, 3) == Dim2(6, 2)

    def test_intersect(self):
        assert Dim2(3, 9).intersect(Dim2(5, 4)) == Dim2(3, 4)

    def test_inner_bounds_checked(self):
        with pytest.raises(IndexError):
            Dim2(2, 2).inner_block(0, 3)

    def test_serializable(self):
        assert deserialize(serialize(Dim2(3, 4))) == Dim2(3, 4)


class TestDim3:
    def test_order_and_size(self):
        d = Dim3(2, 2, 2)
        idxs = list(d.iter_indices())
        assert len(idxs) == 8 and idxs[0] == (0, 0, 0) and idxs[-1] == (1, 1, 1)
        assert d.outer_extent == 2

    def test_outer_block(self):
        assert Dim3(4, 3, 2).outer_block(1, 3) == Dim3(2, 3, 2)

    def test_intersect(self):
        assert Dim3(2, 5, 5).intersect(Dim3(9, 1, 5)) == Dim3(2, 1, 5)

    def test_mismatch(self):
        with pytest.raises(DomainMismatchError):
            Dim3(1, 1, 1).intersect(Seq(2))


class TestDim3Pipelines:
    """3-D index spaces flow through the full stack."""

    def test_sequential_3d_build(self):
        it = tri.map(lambda zyx: zyx[0] * 100 + zyx[1] * 10 + zyx[2],
                     tri.arrayRange((2, 3, 4)))
        arr = tri.build(it)
        # Builds of >2-D domains come back flat (row-major); check values.
        flat = np.asarray(arr).reshape(-1)
        assert flat[0] == 0 and flat[-1] == 1 * 100 + 2 * 10 + 3

    def test_parallel_3d_sum_matches_sequential(self):
        def weight(zyx):
            z, y, x = zyx
            return float(z + 2 * y + 3 * x)

        seq = tri.sum(tri.map(weight, tri.arrayRange((5, 4, 3))))
        with triolet_runtime(MachineSpec(nodes=4, cores_per_node=2)) as rt:
            par = tri.sum(tri.map(weight, tri.par(tri.arrayRange((5, 4, 3)))))
        assert par == seq
        # Partitioned along the outer (z) axis across nodes.
        assert rt.last_section.partition.startswith("1d")

    def test_sliced_3d_indices_stay_global(self):
        it = tri.arrayRange((4, 2, 2))
        chunk = tri.IdxFlat(it.idx.slice(2, 4))
        zs = {z for (z, _y, _x) in chunk.elements()}
        assert zs == {2, 3}
