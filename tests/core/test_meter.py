"""Tests for the cost meter (the measurement half of the timing model)."""
import pytest

from repro.core import meter
from repro.core.meter import CostMeter


class TestMetering:
    def test_no_meter_is_noop(self):
        assert meter.current_meter() is None
        meter.tally_visits(5)  # must not raise
        meter.tally_steps()
        meter.tally_pass()
        meter.tally_materialization(100)

    def test_basic_tallies(self):
        with meter.metered() as m:
            meter.tally_visits(3)
            meter.tally_steps(2)
            meter.tally_lookups()
            meter.tally_pass()
            meter.tally_materialization(64)
        assert m.visits == 3
        assert m.steps == 2
        assert m.lookups == 1
        assert m.passes == 1
        assert m.materializations == 1 and m.materialized_bytes == 64

    def test_nesting_isolates_inner(self):
        with meter.metered() as outer:
            meter.tally_visits(1)
            with meter.metered() as inner:
                meter.tally_visits(10)
            meter.tally_visits(1)
        assert inner.visits == 10
        assert outer.visits == 2  # the inner region did not leak out

    def test_meter_restored_after_exception(self):
        with meter.metered() as outer:
            with pytest.raises(RuntimeError):
                with meter.metered():
                    raise RuntimeError("inner")
            meter.tally_visits(1)
        assert outer.visits == 1
        assert meter.current_meter() is None

    def test_explicit_meter_reuse(self):
        m = CostMeter()
        with meter.metered(m):
            meter.tally_visits(2)
        with meter.metered(m):
            meter.tally_visits(3)
        assert m.visits == 5

    def test_tally_inner_subtracts_the_library_count(self):
        with meter.metered() as m:
            meter.tally_inner(10)  # kernel saw 10, library counts 1
        assert m.visits == 9

    def test_tally_inner_small_values(self):
        with meter.metered() as m:
            meter.tally_inner(1)
            meter.tally_inner(0)
        assert m.visits == 0

    def test_merge(self):
        a = CostMeter(visits=1, steps=2, passes=1)
        b = CostMeter(visits=10, materializations=1, materialized_bytes=8)
        a.merge(b)
        assert a.visits == 11 and a.steps == 2
        assert a.materializations == 1 and a.materialized_bytes == 8
        assert a.passes == 1

    def test_threads_have_independent_meters(self):
        import threading

        results = {}

        def worker(name, n):
            with meter.metered() as m:
                meter.tally_visits(n)
            results[name] = m.visits

        threads = [
            threading.Thread(target=worker, args=(f"t{i}", (i + 1) * 100))
            for i in range(4)
        ]
        with meter.metered() as main_meter:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert results == {"t0": 100, "t1": 200, "t2": 300, "t3": 400}
        assert main_meter.visits == 0  # thread tallies never leak to main
