"""Unit tests for the four virtual-data-structure encodings."""
import numpy as np
import pytest

from repro.core import meter
from repro.core.domains import Seq
from repro.core.encodings import (
    array_indexer,
    collector_from_list,
    concat_map_fold,
    concat_map_step,
    empty_stepper,
    filter_step,
    fold_from_list,
    fold_step,
    histogram_into,
    idx_to_coll,
    idx_to_fold,
    idx_to_step,
    map_coll,
    map_fold,
    map_idx,
    map_step,
    materialize_idx,
    outer_product_idx,
    pack_into,
    range_indexer,
    step_to_coll,
    step_to_fold,
    stepper_from_list,
    unit_stepper,
    whole_list_indexer,
    zip_idx,
    zip_step,
)
from repro.serial import deserialize, register_function, serialize


@register_function
def _double(x):
    return x * 2


@register_function
def _is_positive(x):
    return x > 0


class TestIndexer:
    def test_array_lookup(self):
        idx = array_indexer(np.array([10.0, 20.0, 30.0]))
        assert idx.lookup(1) == 20.0
        assert idx.size == 3

    def test_range_indexer(self):
        idx = range_indexer(4, start=5, step=3)
        assert [idx.lookup(i) for i in range(4)] == [5, 8, 11, 14]

    def test_map_composes_extractors(self):
        idx = map_idx(_double, array_indexer(np.array([1.0, 2.0])))
        assert idx.lookup(0) == 2.0
        assert idx.lookup(1) == 4.0

    def test_map_bulk_path(self):
        idx = map_idx(_double, array_indexer(np.arange(5.0)), f_bulk=_double)
        out = idx.eval_all()
        np.testing.assert_array_equal(out, 2 * np.arange(5.0))

    def test_zip_pairs_elements(self):
        a = array_indexer(np.array([1, 2, 3]))
        b = range_indexer(3, start=10)
        z = zip_idx(a, b)
        assert z.lookup(2) == (3, 12)

    def test_zip_takes_domain_intersection(self):
        z = zip_idx(array_indexer(np.arange(5)), array_indexer(np.arange(3)))
        assert z.domain == Seq(3)

    def test_slice_rebases_indices(self):
        idx = array_indexer(np.array([0.0, 10.0, 20.0, 30.0]))
        s = idx.slice(1, 3)
        assert s.size == 2
        assert s.lookup(0) == 10.0 and s.lookup(1) == 20.0

    def test_slice_ships_only_the_subset(self):
        arr = np.arange(10_000.0)
        idx = array_indexer(arr)
        whole = len(serialize(idx))
        part = len(serialize(idx.slice(0, 100)))
        assert part < whole / 50

    def test_sliced_zip_slices_all_members(self):
        z = zip_idx(
            array_indexer(np.arange(10_000.0)), array_indexer(np.ones(10_000))
        )
        s = z.slice(10, 12)
        assert s.lookup(0) == (10.0, 1.0)
        assert len(serialize(s)) < len(serialize(z)) / 10

    def test_whole_list_indexer_rebases_but_keeps_data(self):
        idx = whole_list_indexer([5, 6, 7, 8])
        s = idx.slice(2, 4)
        assert s.lookup(0) == 7
        # Eden-style: slicing does NOT shrink the payload.
        assert len(serialize(s)) >= len(serialize(idx)) - 8

    def test_indexer_roundtrips_through_serializer(self):
        idx = map_idx(_double, array_indexer(np.arange(4.0)))
        idx2 = deserialize(serialize(idx))
        assert idx2.lookup(3) == 6.0

    def test_outer_product(self):
        op = outer_product_idx(
            array_indexer(np.array([1, 2])), array_indexer(np.array([10, 20, 30]))
        )
        assert op.domain.h == 2 and op.domain.w == 3
        assert op.lookup((1, 2)) == (2, 30)

    def test_outer_product_block_slice_ships_only_needed_rows(self):
        A = np.arange(100.0 * 8).reshape(100, 8)
        B = np.arange(100.0 * 8).reshape(100, 8) + 1
        op = outer_product_idx(array_indexer(A), array_indexer(B))
        block = op.slice_block((0, 10), (0, 10))
        full = len(serialize(op))
        part = len(serialize(block))
        assert part < full / 4
        u, v = block.lookup((3, 7))
        np.testing.assert_array_equal(u, A[3])
        np.testing.assert_array_equal(v, B[7])

    def test_slice_bounds_checked(self):
        idx = array_indexer(np.arange(3))
        with pytest.raises(IndexError):
            idx.slice(0, 4)


class TestStepper:
    def test_list_stepper(self):
        assert stepper_from_list([1, 2, 3]).to_list() == [1, 2, 3]

    def test_unit_and_empty(self):
        assert unit_stepper(42).to_list() == [42]
        assert empty_stepper().to_list() == []

    def test_map(self):
        st = map_step(_double, stepper_from_list([1, 2]))
        assert st.to_list() == [2, 4]

    def test_filter_produces_skips(self):
        st = filter_step(_is_positive, stepper_from_list([1, -2, 3, -4, 5]))
        assert st.to_list() == [1, 3, 5]

    def test_filter_all_out(self):
        st = filter_step(_is_positive, stepper_from_list([-1, -2]))
        assert st.to_list() == []

    def test_concat_map_flattens(self):
        def expand(x):
            return stepper_from_list([x] * x)

        st = concat_map_step(expand, stepper_from_list([1, 2, 3]))
        assert st.to_list() == [1, 2, 2, 3, 3, 3]

    def test_concat_map_with_empty_inners(self):
        def expand(x):
            return stepper_from_list([x] if x > 0 else [])

        st = concat_map_step(expand, stepper_from_list([-1, 2, -3, 4]))
        assert st.to_list() == [2, 4]

    def test_zip_locksteps(self):
        z = zip_step(stepper_from_list([1, 2, 3]), stepper_from_list("abc"))
        assert z.to_list() == [(1, "a"), (2, "b"), (3, "c")]

    def test_zip_with_filtered_stream(self):
        s1 = filter_step(_is_positive, stepper_from_list([1, -9, 2, -9, 3]))
        s2 = stepper_from_list([10, 20, 30])
        assert zip_step(s1, s2).to_list() == [(1, 10), (2, 20), (3, 30)]

    def test_zip_stops_at_shorter(self):
        z = zip_step(stepper_from_list([1, 2]), stepper_from_list([5, 6, 7]))
        assert z.to_list() == [(1, 5), (2, 6)]

    def test_from_indexer(self):
        st = idx_to_step(array_indexer(np.array([7.0, 8.0])))
        assert st.to_list() == [7.0, 8.0]

    def test_fold_step(self):
        st = stepper_from_list([1, 2, 3, 4])
        assert fold_step(lambda a, x: a + x, 0, st) == 10

    def test_steps_are_metered(self):
        st = filter_step(_is_positive, stepper_from_list([1, -1, 2]))
        with meter.metered() as m:
            st.to_list()
        assert m.steps >= 4  # 3 elements + Done (skips add more)
        assert m.visits == 2


class TestFold:
    def test_from_list(self):
        fl = fold_from_list([1, 2, 3])
        assert fl.fold(lambda a, x: a + x, 100) == 106

    def test_from_indexer(self):
        fl = idx_to_fold(array_indexer(np.arange(5.0)))
        assert fl.fold(lambda a, x: a + x, 0.0) == 10.0

    def test_map_fold(self):
        fl = map_fold(_double, fold_from_list([1, 2, 3]))
        assert fl.to_list() == [2, 4, 6]

    def test_concat_map_nests_loops(self):
        def inner(x):
            return fold_from_list(list(range(x)))

        fl = concat_map_fold(inner, fold_from_list([2, 3]))
        assert fl.to_list() == [0, 1, 0, 1, 2]

    def test_step_to_fold(self):
        st = filter_step(_is_positive, stepper_from_list([-1, 5, -2, 7]))
        assert step_to_fold(st).to_list() == [5, 7]

    def test_order_is_sequential(self):
        seen = []
        fold_from_list([3, 1, 2]).fold(lambda a, x: seen.append(x), None)
        assert seen == [3, 1, 2]


class TestCollector:
    def test_collect_list(self):
        out = []
        collector_from_list([1, 2, 3]).collect(out.append)
        assert out == [1, 2, 3]

    def test_map_coll(self):
        out = []
        map_coll(_double, collector_from_list([1, 2])).collect(out.append)
        assert out == [2, 4]

    def test_histogram_into(self):
        coll = collector_from_list([0, 1, 1, 2, 1])
        hist = histogram_into(coll, np.zeros(3))
        np.testing.assert_array_equal(hist, [1, 3, 1])

    def test_weighted_histogram(self):
        coll = collector_from_list([(0, 0.5), (2, 1.5), (0, 1.0)])
        hist = histogram_into(coll, np.zeros(3))
        np.testing.assert_allclose(hist, [1.5, 0.0, 1.5])

    def test_pack_into(self):
        st = filter_step(_is_positive, stepper_from_list([3, -1, 4]))
        out = pack_into(step_to_coll(st), [])
        assert out == [3, 4]

    def test_idx_to_coll(self):
        out = []
        idx_to_coll(range_indexer(3)).collect(out.append)
        assert out == [0, 1, 2]


class TestMaterialization:
    def test_materialize_is_metered(self):
        idx = map_idx(_double, array_indexer(np.arange(100.0)))
        with meter.metered() as m:
            values = materialize_idx(idx)
        assert len(values) == 100
        assert m.materializations == 1
        assert m.materialized_bytes > 0
        assert m.passes == 1

    def test_fused_pipeline_materializes_nothing(self):
        idx = map_idx(_double, array_indexer(np.arange(100.0)))
        with meter.metered() as m:
            fold_step(lambda a, x: a + x, 0.0, idx_to_step(idx))
        assert m.materializations == 0
