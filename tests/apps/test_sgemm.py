"""sgemm correctness and behaviour tests."""
import numpy as np
import pytest

from repro.apps.sgemm import (
    make_problem,
    run_cmpi_app,
    run_eden,
    run_triolet,
    solve_ref,
)
from repro.bench.calibrate import costs_for
from repro.cluster.machine import MachineSpec
from repro.core import meter

MACHINE = MachineSpec(nodes=4, cores_per_node=4)


@pytest.fixture(scope="module")
def problem():
    return make_problem(n=40, alpha=2.5, seed=3)


@pytest.fixture(scope="module")
def truth(problem):
    return problem.alpha * (problem.A @ problem.B)


@pytest.fixture(scope="module")
def costs(problem):
    return costs_for("sgemm", "triolet", problem)


class TestReference:
    def test_matches_numpy(self, problem, truth):
        np.testing.assert_allclose(solve_ref(problem), truth, rtol=1e-10)

    def test_visit_accounting(self, problem):
        with meter.metered() as m:
            solve_ref(problem)
        n = problem.n
        assert m.visits == n * n * n + n * n  # MACs + transpose moves


class TestFrameworks:
    def test_triolet_matches(self, problem, truth, costs):
        run = run_triolet(problem, MACHINE, costs)
        np.testing.assert_allclose(run.value, truth, rtol=1e-10)

    def test_triolet_uses_2d_partition(self, problem, costs):
        run = run_triolet(problem, MACHINE, costs)
        assert run.detail["partition"].startswith("2d")

    def test_cmpi_matches(self, problem, truth, costs):
        run = run_cmpi_app(problem, MACHINE, costs)
        np.testing.assert_allclose(run.value, truth, rtol=1e-10)

    def test_eden_single_node_matches(self, problem, truth, costs):
        run = run_eden(problem, MachineSpec(nodes=1, cores_per_node=4), costs)
        assert run.ok
        np.testing.assert_allclose(run.value, truth, rtol=1e-10)

    def test_eden_fails_at_multiple_nodes_at_paper_scale(self, problem, costs):
        """§4.3: 'The Eden code fails at 2 nodes because the array data is
        too large for Eden's message-passing runtime to buffer.'"""
        run = run_eden(problem, MachineSpec(nodes=2, cores_per_node=16), costs)
        assert not run.ok
        assert "buffer" in run.failed

    def test_nonsquare_grid_machines(self, problem, truth, costs):
        for nodes in (2, 3, 5):
            m = MachineSpec(nodes=nodes, cores_per_node=4)
            run = run_triolet(problem, m, costs)
            np.testing.assert_allclose(run.value, truth, rtol=1e-10)
            run = run_cmpi_app(problem, m, costs)
            np.testing.assert_allclose(run.value, truth, rtol=1e-10)

    def test_transpose_is_separate_section(self, problem, costs):
        run = run_triolet(problem, MACHINE, costs)
        assert 0 < run.detail["transpose_time"] < run.elapsed

    def test_validation(self):
        with pytest.raises(ValueError):
            make_problem(n=0)
