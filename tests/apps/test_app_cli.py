"""Tests for the per-app CLIs (``python -m repro.apps.<app>``)."""
import pytest

from repro.apps.common import app_main


class TestAppCli:
    def test_small_run_prints_speedups(self, capsys):
        assert app_main("mriq", ["--nodes", "2", "--cores", "2"]) == 0
        out = capsys.readouterr().out
        assert "sequential C reference" in out
        assert "triolet" in out and "cmpi" in out
        assert "True" in out

    def test_framework_selection(self, capsys):
        assert app_main("cutcp", ["--nodes", "1", "--cores", "2",
                                  "--frameworks", "triolet"]) == 0
        out = capsys.readouterr().out
        assert "triolet" in out and "cmpi" not in out.split("framework")[1]

    def test_failure_rendered(self, capsys):
        assert app_main("sgemm", ["--nodes", "2", "--frameworks", "eden"]) == 0
        assert "FAIL" in capsys.readouterr().out

    def test_bad_framework_rejected(self):
        with pytest.raises(SystemExit):
            app_main("mriq", ["--frameworks", "fortress"])

    def test_bad_machine_rejected(self):
        with pytest.raises(SystemExit):
            app_main("mriq", ["--nodes", "0"])
