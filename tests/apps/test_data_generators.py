"""Tests for the synthetic problem generators and their scale accounting."""
import numpy as np
import pytest

from repro.apps import cutcp, mriq, sgemm, tpacf


class TestDeterminism:
    @pytest.mark.parametrize(
        "make",
        [mriq.make_problem, sgemm.make_problem, tpacf.make_problem, cutcp.make_problem],
    )
    def test_same_seed_same_problem(self, make):
        a, b = make(seed=3), make(seed=3)
        for field in a.__dataclass_fields__:
            va, vb = getattr(a, field), getattr(b, field)
            if isinstance(va, np.ndarray):
                np.testing.assert_array_equal(va, vb)
            else:
                assert va == vb

    @pytest.mark.parametrize(
        "make",
        [mriq.make_problem, sgemm.make_problem, tpacf.make_problem, cutcp.make_problem],
    )
    def test_different_seed_different_data(self, make):
        a, b = make(seed=1), make(seed=2)
        arrays_a = [
            getattr(a, f)
            for f in a.__dataclass_fields__
            if isinstance(getattr(a, f), np.ndarray)
        ]
        arrays_b = [
            getattr(b, f)
            for f in b.__dataclass_fields__
            if isinstance(getattr(b, f), np.ndarray)
        ]
        assert any(
            not np.array_equal(x, y) for x, y in zip(arrays_a, arrays_b)
        )


class TestScaleAccounting:
    def test_mriq_scales(self):
        p = mriq.make_problem(npix=1000, nk=100)
        assert p.visits == 100_000
        assert p.compute_scale == pytest.approx(p.nominal_visits / p.visits)
        assert p.wire_scale > 1

    def test_sgemm_visits_cubic(self):
        small = sgemm.make_problem(n=16)
        big = sgemm.make_problem(n=32)
        # n^3 term dominates: doubling n ~ 8x the work
        assert 7.0 < big.visits / small.visits < 9.0

    def test_tpacf_work_formula(self):
        p = tpacf.make_problem(m=10, nr=3)
        dd = 45
        rr = 3 * 45
        dr = 3 * 100
        assert p.visits == dd + rr + dr

    def test_cutcp_pts_per_atom_is_box(self):
        p = cutcp.make_problem(cutoff=4.0, spacing=1.0)
        assert p.pts_per_atom == pytest.approx(8.0**3)

    def test_compute_scale_decreases_with_sandbox_size(self):
        small = mriq.make_problem(npix=500, nk=50)
        large = mriq.make_problem(npix=2000, nk=200)
        assert large.compute_scale < small.compute_scale


class TestStatistics:
    def test_tpacf_points_are_unit_vectors(self):
        p = tpacf.make_problem(m=50, nr=2)
        np.testing.assert_allclose(np.linalg.norm(p.obs, axis=1), 1.0, rtol=1e-12)
        np.testing.assert_allclose(
            np.linalg.norm(p.rands.reshape(-1, 3), axis=1), 1.0, rtol=1e-12
        )

    def test_cutcp_atoms_inside_box(self):
        p = cutcp.make_problem(na=100, grid=(16, 16, 16), spacing=0.5)
        nz, ny, nx = p.grid_dim
        assert np.all(p.atoms[:, 0] >= 0) and np.all(
            p.atoms[:, 0] <= (nz - 1) * p.spacing
        )
        assert np.all(np.abs(p.atoms[:, 3]) <= 1.0)  # charges in [-1, 1]

    def test_mriq_coordinates_in_fov(self):
        p = mriq.make_problem(npix=100, nk=10)
        for axis in (p.x, p.y, p.z):
            assert np.all(np.abs(axis) <= 0.5)
        assert np.all(p.mag >= 0)

    def test_sgemm_shapes(self):
        p = sgemm.make_problem(n=24)
        assert p.A.shape == (24, 24) and p.B.shape == (24, 24)
        assert p.n == p.k == p.m == 24
