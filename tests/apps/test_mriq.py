"""mri-q correctness and behaviour tests."""
import numpy as np
import pytest

from repro.apps.mriq import (
    make_problem,
    run_cmpi_app,
    run_eden,
    run_triolet,
    solve_ref,
)
from repro.apps.mriq.kernel import ftcoeff, q_for_pixels
from repro.baselines.eden.runtime import StragglerModel
from repro.bench.calibrate import costs_for
from repro.cluster.machine import MachineSpec
from repro.core import meter

MACHINE = MachineSpec(nodes=4, cores_per_node=4)


@pytest.fixture(scope="module")
def problem():
    return make_problem(npix=257, nk=33, seed=3)


@pytest.fixture(scope="module")
def reference(problem):
    return solve_ref(problem)


@pytest.fixture(scope="module")
def costs(problem):
    return costs_for("mriq", "triolet", problem)


class TestKernel:
    def test_scalar_matches_bulk(self, problem):
        p = problem
        scalar = sum(
            ftcoeff(p.kx[k], p.ky[k], p.kz[k], p.mag[k], p.x[0], p.y[0], p.z[0])
            for k in range(p.nk)
        )
        bulk = q_for_pixels(p.x[:1], p.y[:1], p.z[:1], p.kx, p.ky, p.kz, p.mag)
        assert bulk[0] == pytest.approx(scalar, rel=1e-10)

    def test_ref_visit_accounting(self, problem):
        with meter.metered() as m:
            solve_ref(problem)
        assert m.visits == problem.npix * problem.nk

    def test_zero_frequency_sample(self):
        # A k=0 sample contributes its magnitude with zero phase.
        q = q_for_pixels(
            np.array([0.3]),
            np.array([0.1]),
            np.array([-0.2]),
            np.zeros(1),
            np.zeros(1),
            np.zeros(1),
            np.array([2.5]),
        )
        assert q[0] == pytest.approx(2.5 + 0j)


class TestFrameworks:
    def test_triolet_matches_reference(self, problem, reference, costs):
        run = run_triolet(problem, MACHINE, costs)
        np.testing.assert_allclose(run.value, reference, rtol=1e-9)

    def test_eden_matches_reference(self, problem, reference, costs):
        run = run_eden(problem, MACHINE, costs)
        np.testing.assert_allclose(run.value, reference, rtol=1e-9)

    def test_cmpi_matches_reference(self, problem, reference, costs):
        run = run_cmpi_app(problem, MACHINE, costs)
        np.testing.assert_allclose(run.value, reference, rtol=1e-9)

    def test_single_node_machines(self, problem, reference, costs):
        tiny = MachineSpec(nodes=1, cores_per_node=2)
        for runner in (run_triolet, run_eden, run_cmpi_app):
            run = runner(problem, tiny, costs)
            np.testing.assert_allclose(run.value, reference, rtol=1e-9)

    def test_triolet_ships_pixel_slices_not_everything(self, problem, costs):
        run = run_triolet(problem, MACHINE, costs)
        # Shipped bytes ~ coordinate slices + replicated k-space + results,
        # not nodes x whole-problem.
        whole = (3 * problem.npix + 4 * problem.nk) * 8
        assert run.bytes_shipped < 3 * whole + MACHINE.nodes * 5 * problem.nk * 8

    def test_eden_straggler_changes_time_not_value(self, problem, reference, costs):
        calm = run_eden(problem, MACHINE, costs, straggler=StragglerModel())
        stormy = run_eden(
            problem,
            MACHINE,
            costs,
            straggler=StragglerModel(probability=0.5, min_factor=3, max_factor=4),
        )
        np.testing.assert_allclose(calm.value, stormy.value)
        assert stormy.elapsed > calm.elapsed

    def test_problem_validation(self):
        with pytest.raises(ValueError):
            make_problem(npix=0)

    def test_scales(self, problem):
        assert problem.compute_scale > 1
        assert problem.wire_scale > 1
