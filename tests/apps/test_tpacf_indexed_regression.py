"""Seeded tpacf regression for the indexed-stream DR/RR rewrite.

The DR/RR phases run as segmented indexed bulk pipelines; this pins the
two contracts the rewrite must keep forever:

* the vectorizing planner compiles *everything* -- ``unsupported == 0``,
  no silent scalar fallback -- and
* dd/dr/rr are bit-identical to a golden capture
  (``golden_tpacf_seed3.npz``: m=24, nr=4, nbins=8, seed=3 on the
  2x4 paper machine), across the scalar, vectorized, and distributed
  paths.

If an engine change breaks either, this fails before the bench does.
"""
from pathlib import Path

import numpy as np
import pytest

from repro.apps.tpacf import make_problem, run_triolet, solve_ref
from repro.bench.calibrate import costs_for
from repro.cluster.machine import PAPER_MACHINE
from repro.core.engine.execute import use_vectorization
from repro.core.fusion import planner_stats, reset_planner

pytestmark = pytest.mark.sparse

MACHINE = PAPER_MACHINE.scaled(nodes=2, cores_per_node=4)
GOLDEN = Path(__file__).with_name("golden_tpacf_seed3.npz")


@pytest.fixture(scope="module")
def problem():
    return make_problem(m=24, nr=4, nbins=8, seed=3)


@pytest.fixture(scope="module")
def golden():
    z = np.load(GOLDEN)
    return {k: z[k] for k in ("dd", "dr", "rr")}


@pytest.fixture(scope="module")
def costs(problem):
    return costs_for("tpacf", "triolet", problem)


class TestGoldenHistograms:
    def test_reference_matches_golden(self, problem, golden):
        ref = solve_ref(problem)
        for k in ("dd", "dr", "rr"):
            np.testing.assert_array_equal(ref[k], golden[k])

    def test_vectorized_run_is_bit_identical_to_golden(
        self, problem, golden, costs
    ):
        reset_planner()
        with use_vectorization(True):
            run = run_triolet(problem, MACHINE, costs)
        for k in ("dd", "dr", "rr"):
            np.testing.assert_array_equal(run.value[k], golden[k])

    def test_scalar_fallback_is_bit_identical_to_golden(
        self, problem, golden, costs
    ):
        with use_vectorization(False):
            run = run_triolet(problem, MACHINE, costs)
        for k in ("dd", "dr", "rr"):
            np.testing.assert_array_equal(run.value[k], golden[k])


class TestPlannerContract:
    def test_nothing_unsupported(self, problem, costs):
        """The segmented indexed pipelines must fully engine-compile."""
        reset_planner()
        with use_vectorization(True):
            run_triolet(problem, MACHINE, costs)
        stats = planner_stats()
        assert stats.unsupported == 0, stats
        assert stats.compiled >= 1, stats
