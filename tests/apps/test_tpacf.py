"""tpacf correctness and behaviour tests."""
import numpy as np
import pytest

from repro.apps.tpacf import (
    make_problem,
    run_cmpi_app,
    run_eden,
    run_triolet,
    solve_ref,
)
from repro.apps.tpacf.kernel import correlate_cross, correlate_self, row_bins, score
from repro.bench.calibrate import costs_for
from repro.cluster.machine import MachineSpec

MACHINE = MachineSpec(nodes=4, cores_per_node=4)


@pytest.fixture(scope="module")
def problem():
    return make_problem(m=30, nr=6, nbins=12, seed=3)


@pytest.fixture(scope="module")
def reference(problem):
    return solve_ref(problem)


@pytest.fixture(scope="module")
def costs(problem):
    return costs_for("tpacf", "triolet", problem)


class TestKernel:
    def test_row_bins_matches_scalar_score(self, problem):
        p = problem
        u = p.obs[0]
        vs = p.obs[1:]
        bins = row_bins(p.nbins, u, vs)
        expected = [score(p.nbins, u, v) for v in vs]
        assert list(bins) == expected

    def test_identical_points_bin_zero(self):
        u = np.array([1.0, 0.0, 0.0])
        assert score(10, u, u) == 0

    def test_antipodal_points_last_bin(self):
        u = np.array([1.0, 0.0, 0.0])
        assert score(10, u, -u) == 9

    def test_self_correlation_counts_unique_pairs(self, problem):
        hist = correlate_self(problem.nbins, problem.obs)
        m = problem.m
        assert hist.sum() == m * (m - 1) / 2

    def test_cross_correlation_counts_all_pairs(self, problem):
        hist = correlate_cross(problem.nbins, problem.obs, problem.rands[0])
        assert hist.sum() == problem.m * problem.m

    def test_empty_tail_row(self):
        assert len(row_bins(8, np.array([1.0, 0, 0]), np.empty((0, 3)))) == 0


class TestFrameworks:
    @pytest.mark.parametrize("runner", [run_triolet, run_eden, run_cmpi_app])
    def test_matches_reference(self, runner, problem, reference, costs):
        run = runner(problem, MACHINE, costs)
        assert run.ok
        for key in ("dd", "dr", "rr"):
            np.testing.assert_allclose(run.value[key], reference[key])

    @pytest.mark.parametrize("nodes", [1, 3, 5])
    def test_odd_machine_shapes(self, nodes, problem, reference, costs):
        m = MachineSpec(nodes=nodes, cores_per_node=3)
        run = run_triolet(problem, m, costs)
        for key in ("dd", "dr", "rr"):
            np.testing.assert_allclose(run.value[key], reference[key])

    def test_histogram_totals_conserved(self, problem, reference):
        m, nr = problem.m, problem.nr
        assert reference["dd"].sum() == m * (m - 1) / 2
        assert reference["dr"].sum() == nr * m * m
        assert reference["rr"].sum() == nr * m * (m - 1) / 2

    def test_validation(self):
        with pytest.raises(ValueError):
            make_problem(m=1)
