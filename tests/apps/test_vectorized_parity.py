"""App-level engine parity: vectorization must be unobservable.

For each of the four apps, the Triolet runner with the bulk engine on
must match the scalar path bit-for-bit: same values, same virtual
makespan, same bytes shipped, same cost-meter totals.  And when a rank
crashes mid-section, the re-executed tasks must *hit* the fusion-plan
cache rather than recompile, and still produce the fault-free value.
"""
import numpy as np
import pytest

from repro.bench.calibrate import costs_for
from repro.bench.harness import APPS, make_problem
from repro.cluster import FaultPlan, RankCrash
from repro.cluster.machine import PAPER_MACHINE
from repro.core.engine import use_vectorization
from repro.core.fusion import planner_stats, reset_planner

MACHINE = PAPER_MACHINE.scaled(nodes=2, cores_per_node=4)


@pytest.fixture(autouse=True)
def _fresh_planner():
    reset_planner()
    yield
    reset_planner()


def _bit_identical(a, b) -> bool:
    if isinstance(a, dict):
        return set(a) == set(b) and all(_bit_identical(a[k], b[k]) for k in a)
    return np.asarray(a).tobytes() == np.asarray(b).tobytes()


def _run(app: str, problem, vectorize: bool, faults=None):
    spec = APPS[app]
    costs = costs_for(app, "triolet", problem)
    with use_vectorization(vectorize):
        return spec.runners["triolet"](problem, MACHINE, costs, faults=faults)


@pytest.mark.parametrize("app", ["mriq", "sgemm", "tpacf", "cutcp"])
class TestVectorizedParity:
    def test_bit_identical_and_same_costs(self, app):
        p = make_problem(app)
        vec = _run(app, p, vectorize=True)
        scalar = _run(app, p, vectorize=False)
        assert _bit_identical(vec.value, scalar.value)
        assert vec.elapsed == scalar.elapsed
        assert vec.bytes_shipped == scalar.bytes_shipped
        assert vec.detail["meter"] == scalar.detail["meter"]

    def test_engine_is_exercised(self, app):
        p = make_problem(app)
        _run(app, p, vectorize=True)
        stats = planner_stats()
        assert stats.compiled >= 1
        assert stats.hits > stats.misses  # slices/tasks reuse the plan

    def test_crash_reexecution_hits_plan_cache(self, app):
        p = make_problem(app)
        clean = _run(app, p, vectorize=True)
        compiled_before = planner_stats().compiled

        def crash_plan():  # plans are stateful: one fresh plan per run
            return FaultPlan(faults=(RankCrash(rank=1, at=1e-6),))

        faulted = _run(app, p, vectorize=True, faults=crash_plan())
        stats = planner_stats()
        assert stats.compiled == compiled_before, "re-execution recompiled"
        # Re-execution repartitions across the survivors, which regroups
        # the floating-point combines -- so compare against the *scalar*
        # path under the identical fault (bitwise), and against the
        # fault-free value numerically.
        faulted_scalar = _run(app, p, vectorize=False, faults=crash_plan())
        assert _bit_identical(faulted.value, faulted_scalar.value)
        assert faulted.elapsed == faulted_scalar.elapsed
        assert APPS[app].same_value(faulted.value, clean.value)
        assert faulted.elapsed > clean.elapsed  # lost time was charged
