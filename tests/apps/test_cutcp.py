"""cutcp correctness and behaviour tests."""
import numpy as np
import pytest

from repro.apps.cutcp import (
    make_problem,
    run_cmpi_app,
    run_eden,
    run_triolet,
    solve_ref,
)
from repro.apps.cutcp.kernel import atom_contribution
from repro.bench.calibrate import costs_for
from repro.cluster.machine import MachineSpec

MACHINE = MachineSpec(nodes=4, cores_per_node=4)


@pytest.fixture(scope="module")
def problem():
    return make_problem(na=60, grid=(12, 12, 12), cutoff=3.0, seed=3)


@pytest.fixture(scope="module")
def reference(problem):
    return solve_ref(problem)


@pytest.fixture(scope="module")
def costs(problem):
    return costs_for("cutcp", "triolet", problem)


class TestKernel:
    def test_contribution_respects_cutoff(self, problem):
        p = problem
        nz, ny, nx = p.grid_dim
        atom = p.atoms[0]
        flat, s = atom_contribution(atom, p.grid_dim, p.spacing, p.cutoff)
        gz = flat // (ny * nx)
        gy = (flat // nx) % ny
        gx = flat % nx
        r = np.sqrt(
            (gz * p.spacing - atom[0]) ** 2
            + (gy * p.spacing - atom[1]) ** 2
            + (gx * p.spacing - atom[2]) ** 2
        )
        assert np.all(r < p.cutoff)
        assert np.all(r > 0)

    def test_potential_formula(self):
        # One atom at the origin with q=2, grid point at distance 1, c=2.
        atom = np.array([0.0, 0.0, 0.0, 2.0])
        flat, s = atom_contribution(atom, (2, 2, 2), 1.0, 2.0)
        idx = list(flat)
        # grid point (0,0,1) -> flat 1, r=1: s = 2 * (1/1) * (1 - 1/4)^2
        assert 1 in idx
        val = s[idx.index(1)]
        assert val == pytest.approx(2.0 * (1 - 0.25) ** 2)

    def test_atom_outside_box_contributes_nothing(self):
        atom = np.array([100.0, 100.0, 100.0, 1.0])
        flat, s = atom_contribution(atom, (4, 4, 4), 1.0, 2.0)
        assert len(flat) == 0 and len(s) == 0

    def test_indices_within_grid(self, problem):
        for atom in problem.atoms[:20]:
            flat, _ = atom_contribution(
                atom, problem.grid_dim, problem.spacing, problem.cutoff
            )
            assert np.all(flat >= 0) and np.all(flat < problem.grid_size)


class TestFrameworks:
    @pytest.mark.parametrize("runner", [run_triolet, run_eden, run_cmpi_app])
    def test_matches_reference(self, runner, problem, reference, costs):
        run = runner(problem, MACHINE, costs)
        assert run.ok
        np.testing.assert_allclose(run.value, reference, rtol=1e-9, atol=1e-12)

    def test_superposition(self, costs):
        """Potentials add: two atoms = sum of single-atom grids."""
        base = make_problem(na=2, grid=(10, 10, 10), cutoff=3.0, seed=5)
        both = solve_ref(base)
        from dataclasses import replace

        one = solve_ref(replace(base, atoms=base.atoms[:1]))
        two = solve_ref(replace(base, atoms=base.atoms[1:]))
        np.testing.assert_allclose(both, one + two, rtol=1e-10)

    def test_triolet_gc_time_reported(self, problem, costs):
        run = run_triolet(problem, MACHINE, costs)
        assert run.detail["gc_time"] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            make_problem(na=0)
        with pytest.raises(ValueError):
            make_problem(grid=(1, 4, 4))
