"""jacobi (1-D rod and 2-D plate heat relaxation) on the stencil
skeleton: bit-identity against the sequential solver and the halo-only
steady state the views PR promises."""
import numpy as np
import pytest

from repro.apps.jacobi import (
    jacobi_plate,
    jacobi_rod,
    kernel_for,
    make_problem,
    run_triolet,
    solve_ref,
)
from repro.cluster import FaultPlan, MachineSpec, RankLoss

pytestmark = pytest.mark.views

MACHINE = MachineSpec(nodes=4, cores_per_node=2)


class TestProblem:
    def test_boundaries_are_pinned(self):
        p = make_problem(n=64, seed=1)
        assert p.init[0] == 1.0 and p.init[-1] == 0.0

    def test_seed_reproducible(self):
        a, b = make_problem(seed=9), make_problem(seed=9)
        assert np.array_equal(a.init, b.init)
        assert not np.array_equal(a.init, make_problem(seed=10).init)

    def test_plate_shape(self):
        p = make_problem(n=24, width=8)
        assert p.is_2d and p.init.shape == (24, 8)
        assert p.row_nbytes == 8 * p.init.itemsize

    def test_validation(self):
        with pytest.raises(ValueError):
            make_problem(n=2)
        with pytest.raises(ValueError):
            make_problem(width=1)
        with pytest.raises(ValueError):
            make_problem(iterations=-1)


class TestKernels:
    def test_rod_kernel_width(self):
        xpad = np.arange(10.0)
        assert len(jacobi_rod(xpad)) == 8

    def test_plate_kernel_preserves_side_columns(self):
        xpad = np.arange(40.0).reshape(8, 5)
        out = jacobi_plate(xpad)
        assert out.shape == (6, 5)
        # Side columns are Dirichlet in the width direction.
        assert np.array_equal(out[:, 0], xpad[1:-1, 0])
        assert np.array_equal(out[:, -1], xpad[1:-1, -1])

    def test_kernel_for_dispatches(self):
        assert kernel_for(make_problem(n=16)) is jacobi_rod
        assert kernel_for(make_problem(n=16, width=4)) is jacobi_plate


class TestBitIdentity:
    def test_rod_matches_reference(self):
        p = make_problem(n=192, iterations=7, seed=2)
        run = run_triolet(p, MACHINE)
        assert run.ok
        assert run.value.tobytes() == solve_ref(p).tobytes()

    def test_plate_matches_reference(self):
        p = make_problem(n=96, width=12, iterations=5, seed=3)
        run = run_triolet(p, MACHINE)
        assert run.value.tobytes() == solve_ref(p).tobytes()

    def test_two_rank_loss_recovery_stays_identical(self):
        p = make_problem(n=128, iterations=8, seed=4)
        plan = FaultPlan(faults=(RankLoss(rank=1, at=1e-6, section=2),))
        run = run_triolet(p, MACHINE, faults=plan)
        assert run.value.tobytes() == solve_ref(p).tobytes()
        assert run.detail["recovery"].rank_losses == 1


class TestDetail:
    def test_sections_expose_halo_steady_state(self):
        p = make_problem(n=192, iterations=6, seed=5)
        run = run_triolet(p, MACHINE)
        sections = run.detail["sections"]
        assert len(sections) == p.iterations
        assert sections[0]["input_bytes"] > 0
        for s in sections[1:]:
            assert s["input_bytes"] == 0
            assert s["halo_bytes"] > 0

    def test_data_plane_totals_present(self):
        p = make_problem(n=64, iterations=2, seed=6)
        run = run_triolet(p, MACHINE)
        dp = run.detail["data_plane"]
        assert dp["sections"] == 2
        assert dp["halo_requests"] == dp["halo_hits"] + dp["halo_refreshes"]
