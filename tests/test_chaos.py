"""Chaos suite: every app survives an injected fault storm unchanged.

Each app runs once fault-free and once under a seeded
:meth:`FaultPlan.chaos` schedule (one rank crash + transient send
failures + a straggling node).  The recovered run must produce the
numerically identical result, cost a bounded amount of extra virtual
time, and be bit-deterministic for a given seed.

Marked ``chaos`` so CI can sweep seeds: ``pytest -m chaos``.  The seed
list can be overridden with the ``CHAOS_SEED`` environment variable.
"""
import os

import pytest

from repro.bench.calibrate import costs_for
from repro.bench.harness import APPS
from repro.cluster.faults import FaultPlan
from repro.cluster.machine import PAPER_MACHINE

MACHINE = PAPER_MACHINE.scaled(nodes=4, cores_per_node=4)
NRANKS = 4  # distributed sections use one rank per node

#: small-but-real instances so the storm hits multi-section runs fast
CHAOS_PARAMS = {
    "mriq": dict(npix=512, nk=64, seed=7),
    "sgemm": dict(n=48, seed=7),
    "tpacf": dict(m=32, nr=8, seed=7),
    "cutcp": dict(na=120, grid=(16, 16, 16), cutoff=4.0, seed=7),
}

#: recovery may retry, re-partition and fragment, but never blow up the
#: virtual makespan by more than this factor
MAX_INFLATION = 3.0

SEEDS = (
    [int(os.environ["CHAOS_SEED"])]
    if os.environ.get("CHAOS_SEED")
    else [11, 23, 47]
)


def run_app(app: str, faults: FaultPlan | None):
    spec = APPS[app]
    p = spec.make_problem(**CHAOS_PARAMS[app])
    costs = costs_for(app, "triolet", p)
    return spec.runners["triolet"](p, MACHINE, costs, faults=faults)


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("app", sorted(APPS))
class TestChaos:
    def test_result_survives_fault_storm(self, app, seed):
        spec = APPS[app]
        clean = run_app(app, None)
        storm = run_app(app, FaultPlan.chaos(nranks=NRANKS, seed=seed))
        assert spec.same_value(storm.value, clean.value), (
            f"{app} result changed under chaos seed {seed}"
        )
        report = storm.detail["recovery"]
        assert report.faults.get("crash", 0) >= 1
        assert report.faults.get("send", 0) >= 1
        assert storm.elapsed > clean.elapsed
        assert storm.elapsed <= MAX_INFLATION * clean.elapsed, (
            f"{app} makespan inflated {storm.elapsed / clean.elapsed:.2f}x"
        )

    def test_storm_is_deterministic(self, app, seed):
        a = run_app(app, FaultPlan.chaos(nranks=NRANKS, seed=seed))
        b = run_app(app, FaultPlan.chaos(nranks=NRANKS, seed=seed))
        assert APPS[app].same_value(a.value, b.value)
        assert a.elapsed == b.elapsed
        assert a.detail["recovery"].faults == b.detail["recovery"].faults
