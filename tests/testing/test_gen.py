"""The pipeline generator: determinism, coverage, and oracle agreement."""
import numpy as np
import pytest

from repro.core.engine.execute import use_vectorization
from repro.testing.gen import (
    IDXFLAT,
    IDXNEST,
    STEPFLAT,
    STEPNEST,
    build_iter,
    generate_program,
    ref_value,
    run_consumer,
)
from repro.testing.runner import semantic_equal

SWEEP = [(0, c) for c in range(120)] + [(9, c) for c in range(80)]


class TestDeterminism:
    def test_same_seed_case_is_identical(self):
        for seed, case in [(0, 0), (3, 17), (12, 5)]:
            a = generate_program(seed, case)
            b = generate_program(seed, case)
            assert a.describe() == b.describe()
            assert self._arrays(a.root) == self._arrays(b.root)

    def _arrays(self, node):
        out = [arr.tobytes() for arr in node.arrays]
        for child in node.children:
            out.extend(self._arrays(child))
        return out

    def test_cases_differ_within_a_seed(self):
        descs = {generate_program(0, c).describe() for c in range(30)}
        assert len(descs) == 30


class TestCoverage:
    def test_all_four_constructors_are_reached(self):
        shapes = {generate_program(s, c).root.shape for s, c in SWEEP}
        assert shapes == {IDXFLAT, IDXNEST, STEPFLAT, STEPNEST}

    def test_edge_domains_forced_on_fixed_residues(self):
        # case % 13 == 5 forces an empty source, == 6 a single element.
        for seed in (0, 4, 21):
            empty = generate_program(seed, 5)
            single = generate_program(seed, 6)
            assert self._source_extent(empty.root) in (0, (0,))
            assert self._source_extent(single.root) in (1, (1,))

    def _source_extent(self, node):
        while node.children:
            node = node.children[0]
        if node.op == "outer":
            return len(node.arrays[0])
        if node.op == "rows":
            return node.arrays[0].shape[0]
        return len(node.arrays[0])

    def test_every_consumer_appears(self):
        consumers = {generate_program(s, c).consumer for s, c in SWEEP}
        assert consumers >= {
            "sum", "min", "max", "count", "fold", "hist", "collect", "build",
        }

    def test_values_are_integral_float64(self):
        # Bit-identity across reduction orders rests on this.  Indexed
        # streams add int64 key arrays, integral by construction.
        for seed, case in SWEEP[:40]:
            prog = generate_program(seed, case)
            for arr in self._all_arrays(prog.root):
                assert arr.dtype in (np.float64, np.int64)
                if arr.dtype == np.float64:
                    assert np.all(arr == np.floor(arr))

    def _all_arrays(self, node):
        out = list(node.arrays)
        for child in node.children:
            out.extend(self._all_arrays(child))
        return out


class TestOracle:
    @pytest.mark.parametrize("case", range(25))
    def test_scalar_execution_matches_reference(self, case):
        prog = generate_program(2, case)
        with use_vectorization(False):
            got = run_consumer(prog, build_iter(prog))
        assert semantic_equal(ref_value(prog), got), prog.describe()
