"""The invariant checker itself: it must accept real sections and reject
synthetically corrupted ones (a checker that can't fail checks nothing)."""
from types import SimpleNamespace

import numpy as np
import pytest

import repro.triolet as tri
from repro.cluster import MachineSpec
from repro.data.plane import DataPlane
from repro.runtime import triolet_runtime
from repro.serial import register_function
from repro.testing.invariants import (
    InvariantChecker,
    InvariantViolation,
    check_plane,
    checking,
)


@register_function
def _twice(x):
    return 2.0 * x


class TestAcceptsRealSections:
    def test_clean_runs_pass_and_count_sections(self):
        xs = np.arange(200.0)
        with checking() as ck:
            with triolet_runtime(MachineSpec(nodes=4, cores_per_node=2)):
                tri.sum(tri.map(_twice, tri.par(xs)))
                tri.build(tri.map(_twice, tri.par(xs)))
        assert ck.sections == 2
        assert ck.crash_sections == 0

    def test_handle_sections_pass_plane_checks(self):
        xs = np.arange(300.0)
        with checking() as ck:
            with triolet_runtime(MachineSpec(nodes=3, cores_per_node=1)) as rt:
                h = rt.distribute(xs)
                tri.sum(tri.par(h))
                tri.sum(tri.par(h))
        assert ck.sections == 2
        check_plane(rt.plane)


def _payload(**over):
    """A minimal well-formed 1-D section payload the checker accepts."""
    it = tri.par(tri.iterate(np.arange(10.0)))
    base = dict(
        runtime=SimpleNamespace(
            plane=DataPlane(),
            recovery_report=SimpleNamespace(reshipped_bytes=0),
        ),
        record=SimpleNamespace(
            partition="1d x2", data_plane=None, recovery=None
        ),
        iterator=it,
        partition="1d x2",
        bounds=[(0, 5), (5, 10)],
        nchunks=2,
        ship=None,
        spec=None,
        attempts=1,
        dead_ranks=0,
    )
    base.update(over)
    return base


class TestRejectsCorruptedSections:
    def test_well_formed_payload_passes(self):
        InvariantChecker()(_payload())

    def test_gap_in_tiling_rejected(self):
        with pytest.raises(InvariantViolation, match="do not tile"):
            InvariantChecker()(_payload(bounds=[(0, 4), (5, 10)]))

    def test_overlap_in_tiling_rejected(self):
        with pytest.raises(InvariantViolation, match="do not tile"):
            InvariantChecker()(_payload(bounds=[(0, 6), (5, 10)]))

    def test_short_coverage_rejected(self):
        with pytest.raises(InvariantViolation, match="extent is 10"):
            InvariantChecker()(_payload(bounds=[(0, 5), (5, 9)]))

    def test_chunk_count_mismatch_rejected(self):
        with pytest.raises(InvariantViolation, match="partition bounds"):
            InvariantChecker()(_payload(nchunks=3))

    def test_broken_conservation_rejected(self):
        stats = dict(
            requests=3, resident_hits=1, placements=1, migrations=0,
            cache_hits=0, cache_misses=0, input_bytes=80, placed_bytes=80,
        )
        payload = _payload(
            ship=object(),
            record=SimpleNamespace(
                partition="1d x2", data_plane=stats, recovery=None
            ),
        )
        with pytest.raises(InvariantViolation, match="conservation broken"):
            InvariantChecker()(payload)

    def test_negative_counter_rejected(self):
        stats = dict(
            requests=1, resident_hits=1, placements=0, migrations=0,
            cache_hits=0, cache_misses=0, input_bytes=0, placed_bytes=-8,
        )
        payload = _payload(
            ship=object(),
            record=SimpleNamespace(
                partition="1d x2", data_plane=stats, recovery=None
            ),
        )
        with pytest.raises(InvariantViolation, match="negative"):
            InvariantChecker()(payload)

    def test_plane_stats_without_shipment_rejected(self):
        payload = _payload(
            record=SimpleNamespace(
                partition="1d x2", data_plane={"requests": 0}, recovery=None
            ),
        )
        with pytest.raises(InvariantViolation, match="planned no shipment"):
            InvariantChecker()(payload)

    def test_reshipped_growth_without_crash_rejected(self):
        ck = InvariantChecker()
        rt = SimpleNamespace(
            plane=DataPlane(),
            recovery_report=SimpleNamespace(reshipped_bytes=0),
        )
        ck(_payload(runtime=rt))
        rt.recovery_report.reshipped_bytes = 4096  # grew, but attempts == 1
        with pytest.raises(InvariantViolation, match="without a crash"):
            ck(_payload(runtime=rt))

    def test_reshipped_decrease_rejected(self):
        ck = InvariantChecker()
        rt = SimpleNamespace(
            plane=DataPlane(),
            recovery_report=SimpleNamespace(reshipped_bytes=100),
        )
        ck(
            _payload(
                runtime=rt,
                attempts=2,
                record=SimpleNamespace(
                    partition="1d x2",
                    data_plane=None,
                    recovery=SimpleNamespace(reexecuted_chunks=2),
                ),
            )
        )
        rt.recovery_report.reshipped_bytes = 50
        with pytest.raises(InvariantViolation, match="decreased"):
            ck(_payload(runtime=rt))

    def test_placement_on_dead_rank_rejected(self):
        plane = DataPlane()
        h = plane.register(np.arange(10.0))
        plane._placement[(3, h.array_id)] = (0, 10)
        rt = SimpleNamespace(
            plane=plane,
            recovery_report=SimpleNamespace(reshipped_bytes=0),
        )
        # After a crash only chunk ranks [0, 2) survive; rank 3 is dead.
        payload = _payload(
            runtime=rt,
            attempts=2,
            record=SimpleNamespace(
                partition="1d x2",
                data_plane=None,
                recovery=SimpleNamespace(reexecuted_chunks=1),
            ),
        )
        with pytest.raises(InvariantViolation, match="survived the crash"):
            InvariantChecker()(payload)

    def test_hull_outside_handle_rejected(self):
        plane = DataPlane()
        h = plane.register(np.arange(10.0))
        plane._placement[(1, h.array_id)] = (0, 99)
        with pytest.raises(InvariantViolation, match="escapes handle"):
            check_plane(plane)


@pytest.mark.sparse
class TestIndexedAssembly:
    """The indexed-partition conservation law: rank slices of an
    ``IndexedIter`` must reassemble its ``(index, value)`` pairs exactly.
    Seeded violations -- duplicate keys, a non-monotone key gather, and a
    pair-dropping slice -- must each be rejected."""

    @staticmethod
    def _stream():
        from repro.core.iterators.indexed import indexed_pairs

        keys = np.arange(0, 20, 2, dtype=np.int64)
        vals = np.arange(10, dtype=np.float64)
        return indexed_pairs(keys, vals)

    def test_real_indexed_sections_pass(self):
        with checking() as ck:
            with triolet_runtime(MachineSpec(nodes=3, cores_per_node=2)):
                tri.build(tri.par(self._stream()))
        assert ck.sections == 1

    def test_duplicate_keys_rejected(self):
        from repro.core.encodings.indexer import array_indexer, zip_idx
        from repro.core.iterators.indexed import IndexedIter

        # Constructed behind indexed_pairs' back: the canonicalization
        # that would dedup [3, 3, 7] never ran.
        bad = IndexedIter(
            zip_idx(
                array_indexer(np.array([3, 3, 7], dtype=np.int64)),
                array_indexer(np.array([1.0, 2.0, 3.0])),
            )
        )
        payload = _payload(iterator=bad, bounds=[(0, 2), (2, 3)])
        with pytest.raises(InvariantViolation, match="strictly increasing"):
            InvariantChecker()(payload)

    def test_nonmonotone_key_gather_rejected(self):
        from repro.core.encodings.indexer import (
            array_indexer,
            gather_idx,
            zip_idx,
        )
        from repro.core.iterators.indexed import IndexedIter

        # A gather with out-of-order positions reads keys [9, 3]: the
        # stream's own ordering contract is broken before any slicing.
        key = gather_idx(
            array_indexer(np.array([3, 9], dtype=np.int64)),
            np.array([1, 0], dtype=np.int64),
        )
        bad = IndexedIter(zip_idx(key, array_indexer(np.array([1.0, 2.0]))))
        payload = _payload(iterator=bad, bounds=[(0, 1), (1, 2)])
        with pytest.raises(InvariantViolation, match="strictly increasing"):
            InvariantChecker()(payload)

    def test_pair_dropping_slice_rejected(self):
        from repro.core.encodings.indexer import Idx
        from repro.core.iterators.indexed import IndexedIter

        class _LossyIdx(Idx):
            """Drops the last pair of every slice window."""

            def slice(self, lo, hi):
                return super().slice(lo, max(lo, hi - 1))

        good = self._stream().idx
        bad = IndexedIter(_LossyIdx(good.domain, good.extract, good.source))
        payload = _payload(iterator=bad, bounds=[(0, 5), (5, 10)])
        with pytest.raises(InvariantViolation, match="pairs, not"):
            InvariantChecker()(payload)


def _halo_stats(**over):
    stats = dict(
        requests=0, resident_hits=0, placements=0, migrations=0,
        cache_hits=0, cache_misses=0, input_bytes=0, placed_bytes=0,
        halo_requests=0, halo_hits=0, halo_refreshes=0, halo_bytes=0,
    )
    stats.update(over)
    return stats


@pytest.mark.views
class TestRejectsCorruptedHalos:
    """Seeded violations of the halo rules -- each law must actually fire."""

    def test_stencil_sections_pass_the_checker(self):
        from repro.cluster import FaultPlan, RankLoss

        init = (np.arange(128.0) % 10).copy()
        plan = FaultPlan(faults=(RankLoss(rank=1, at=1e-6, section=2),))
        with checking() as ck:
            with triolet_runtime(
                MachineSpec(nodes=4, cores_per_node=2), faults=plan
            ) as rt:
                h = rt.distribute(init)
                rt.stencil(
                    h, radius=1,
                    kernel=lambda x: 0.5 * (x[:-2] + x[2:]),
                    iterations=4,
                )
        assert ck.sections == 4
        assert ck.crash_sections == 1
        check_plane(rt.plane)

    def test_halo_conservation_broken_rejected(self):
        stats = _halo_stats(halo_requests=2, halo_hits=1)
        payload = _payload(
            ship=object(),
            record=SimpleNamespace(
                partition="1d x2 halo r1", data_plane=stats, recovery=None
            ),
        )
        with pytest.raises(InvariantViolation, match="halo conservation"):
            InvariantChecker()(payload)

    def test_halo_bytes_over_ceiling_rejected(self):
        # bound = 2 * radius * nchunks * row_nbytes = 2*1*2*8 = 32 bytes.
        stats = _halo_stats(
            halo_requests=1, halo_refreshes=1, halo_bytes=1000
        )
        payload = _payload(
            ship=object(),
            record=SimpleNamespace(
                partition="1d x2 halo r1", data_plane=stats, recovery=None
            ),
            halo={"aid": 0, "radius": 1, "row_nbytes": 8},
        )
        with pytest.raises(InvariantViolation, match="ceiling"):
            InvariantChecker()(payload)

    def test_ghost_on_dead_rank_rejected(self):
        plane = DataPlane()
        h = plane.register(np.arange(10.0))
        plane._ensure_rank(3)
        plane._caches[3].put(h.array_id, 4, 5, 8, ghost=True)
        rt = SimpleNamespace(
            plane=plane,
            recovery_report=SimpleNamespace(reshipped_bytes=0),
        )
        # Only chunk ranks [0, 2) survived this crash section.
        payload = _payload(
            runtime=rt,
            attempts=2,
            ship=object(),
            record=SimpleNamespace(
                partition="1d x2 halo r1",
                data_plane=_halo_stats(),
                recovery=SimpleNamespace(reexecuted_chunks=1),
            ),
            halo={"aid": h.array_id, "radius": 1, "row_nbytes": 8},
        )
        with pytest.raises(InvariantViolation, match="outside the live"):
            InvariantChecker()(payload)

    def test_ghost_without_backing_bytes_rejected(self):
        plane = DataPlane()
        h = plane.register(np.arange(10.0))
        plane._ensure_rank(1)
        plane._caches[1].put(h.array_id, 0, 2, 16, ghost=True)
        with pytest.raises(InvariantViolation, match="no backing bytes"):
            check_plane(plane)

    def test_ghost_escaping_handle_rejected(self):
        plane = DataPlane()
        h = plane.register(np.arange(10.0))
        plane._ensure_rank(1)
        plane._caches[1].put(h.array_id, 8, 99, 728, ghost=True)
        with pytest.raises(InvariantViolation, match="escapes handle"):
            check_plane(plane)

    def test_halo_totals_conservation_rejected(self):
        plane = DataPlane()
        plane.totals["halo_requests"] = 3
        plane.totals["halo_hits"] = 1
        with pytest.raises(InvariantViolation, match="halo totals"):
            check_plane(plane)
