"""The invariant checker itself: it must accept real sections and reject
synthetically corrupted ones (a checker that can't fail checks nothing)."""
from types import SimpleNamespace

import numpy as np
import pytest

import repro.triolet as tri
from repro.cluster import MachineSpec
from repro.data.plane import DataPlane
from repro.runtime import triolet_runtime
from repro.serial import register_function
from repro.testing.invariants import (
    InvariantChecker,
    InvariantViolation,
    check_plane,
    checking,
)


@register_function
def _twice(x):
    return 2.0 * x


class TestAcceptsRealSections:
    def test_clean_runs_pass_and_count_sections(self):
        xs = np.arange(200.0)
        with checking() as ck:
            with triolet_runtime(MachineSpec(nodes=4, cores_per_node=2)):
                tri.sum(tri.map(_twice, tri.par(xs)))
                tri.build(tri.map(_twice, tri.par(xs)))
        assert ck.sections == 2
        assert ck.crash_sections == 0

    def test_handle_sections_pass_plane_checks(self):
        xs = np.arange(300.0)
        with checking() as ck:
            with triolet_runtime(MachineSpec(nodes=3, cores_per_node=1)) as rt:
                h = rt.distribute(xs)
                tri.sum(tri.par(h))
                tri.sum(tri.par(h))
        assert ck.sections == 2
        check_plane(rt.plane)


def _payload(**over):
    """A minimal well-formed 1-D section payload the checker accepts."""
    it = tri.par(tri.iterate(np.arange(10.0)))
    base = dict(
        runtime=SimpleNamespace(
            plane=DataPlane(),
            recovery_report=SimpleNamespace(reshipped_bytes=0),
        ),
        record=SimpleNamespace(
            partition="1d x2", data_plane=None, recovery=None
        ),
        iterator=it,
        partition="1d x2",
        bounds=[(0, 5), (5, 10)],
        nchunks=2,
        ship=None,
        spec=None,
        attempts=1,
        dead_ranks=0,
    )
    base.update(over)
    return base


class TestRejectsCorruptedSections:
    def test_well_formed_payload_passes(self):
        InvariantChecker()(_payload())

    def test_gap_in_tiling_rejected(self):
        with pytest.raises(InvariantViolation, match="do not tile"):
            InvariantChecker()(_payload(bounds=[(0, 4), (5, 10)]))

    def test_overlap_in_tiling_rejected(self):
        with pytest.raises(InvariantViolation, match="do not tile"):
            InvariantChecker()(_payload(bounds=[(0, 6), (5, 10)]))

    def test_short_coverage_rejected(self):
        with pytest.raises(InvariantViolation, match="extent is 10"):
            InvariantChecker()(_payload(bounds=[(0, 5), (5, 9)]))

    def test_chunk_count_mismatch_rejected(self):
        with pytest.raises(InvariantViolation, match="partition bounds"):
            InvariantChecker()(_payload(nchunks=3))

    def test_broken_conservation_rejected(self):
        stats = dict(
            requests=3, resident_hits=1, placements=1, migrations=0,
            cache_hits=0, cache_misses=0, input_bytes=80, placed_bytes=80,
        )
        payload = _payload(
            ship=object(),
            record=SimpleNamespace(
                partition="1d x2", data_plane=stats, recovery=None
            ),
        )
        with pytest.raises(InvariantViolation, match="conservation broken"):
            InvariantChecker()(payload)

    def test_negative_counter_rejected(self):
        stats = dict(
            requests=1, resident_hits=1, placements=0, migrations=0,
            cache_hits=0, cache_misses=0, input_bytes=0, placed_bytes=-8,
        )
        payload = _payload(
            ship=object(),
            record=SimpleNamespace(
                partition="1d x2", data_plane=stats, recovery=None
            ),
        )
        with pytest.raises(InvariantViolation, match="negative"):
            InvariantChecker()(payload)

    def test_plane_stats_without_shipment_rejected(self):
        payload = _payload(
            record=SimpleNamespace(
                partition="1d x2", data_plane={"requests": 0}, recovery=None
            ),
        )
        with pytest.raises(InvariantViolation, match="planned no shipment"):
            InvariantChecker()(payload)

    def test_reshipped_growth_without_crash_rejected(self):
        ck = InvariantChecker()
        rt = SimpleNamespace(
            plane=DataPlane(),
            recovery_report=SimpleNamespace(reshipped_bytes=0),
        )
        ck(_payload(runtime=rt))
        rt.recovery_report.reshipped_bytes = 4096  # grew, but attempts == 1
        with pytest.raises(InvariantViolation, match="without a crash"):
            ck(_payload(runtime=rt))

    def test_reshipped_decrease_rejected(self):
        ck = InvariantChecker()
        rt = SimpleNamespace(
            plane=DataPlane(),
            recovery_report=SimpleNamespace(reshipped_bytes=100),
        )
        ck(
            _payload(
                runtime=rt,
                attempts=2,
                record=SimpleNamespace(
                    partition="1d x2",
                    data_plane=None,
                    recovery=SimpleNamespace(reexecuted_chunks=2),
                ),
            )
        )
        rt.recovery_report.reshipped_bytes = 50
        with pytest.raises(InvariantViolation, match="decreased"):
            ck(_payload(runtime=rt))

    def test_placement_on_dead_rank_rejected(self):
        plane = DataPlane()
        h = plane.register(np.arange(10.0))
        plane._placement[(3, h.array_id)] = (0, 10)
        rt = SimpleNamespace(
            plane=plane,
            recovery_report=SimpleNamespace(reshipped_bytes=0),
        )
        # After a crash only chunk ranks [0, 2) survive; rank 3 is dead.
        payload = _payload(
            runtime=rt,
            attempts=2,
            record=SimpleNamespace(
                partition="1d x2",
                data_plane=None,
                recovery=SimpleNamespace(reexecuted_chunks=1),
            ),
        )
        with pytest.raises(InvariantViolation, match="survived the crash"):
            InvariantChecker()(payload)

    def test_hull_outside_handle_rejected(self):
        plane = DataPlane()
        h = plane.register(np.arange(10.0))
        plane._placement[(1, h.array_id)] = (0, 99)
        with pytest.raises(InvariantViolation, match="escapes handle"):
            check_plane(plane)
