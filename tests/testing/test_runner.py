"""Differential runner: a tier-1 smoke slice plus fuzz-marked sweeps."""
import pytest

from repro.testing import __main__ as cli
from repro.testing.runner import crash_drill, run_case, run_suite


class TestRunCase:
    @pytest.mark.parametrize("case", range(8))
    def test_first_cases_pass(self, case):
        r = run_case(0, case)
        assert r.ok, (r.desc, r.failures)

    def test_edge_domain_cases_pass(self):
        # case 5 is forced-empty, case 6 forced-single (gen contract).
        for case in (5, 6):
            r = run_case(1, case)
            assert r.ok, (r.desc, r.failures)

    def test_result_carries_replay_line(self):
        r = run_case(0, 3)
        assert "--seed 0" in r.repro_line()
        assert "--only 3" in r.repro_line()


class TestCrashDrill:
    def test_drill_exercises_recovery_under_checker(self):
        r = crash_drill(0)
        assert r.ok, r.failures
        assert r.crash_exercised
        assert r.sections >= 2


class TestSuite:
    def test_small_suite_reports_sections_and_crash(self):
        suite = run_suite(0, 4)
        assert suite.ok
        assert suite.crash_exercised  # via the appended drill
        assert sum(r.sections for r in suite.results) > 0
        assert "cases passed" in suite.summary()

    def test_only_skips_the_drill(self):
        suite = run_suite(0, 10, only=2)
        assert len(suite.results) == 1
        assert suite.results[0].case == 2


class TestCli:
    def test_cli_passes_on_a_small_run(self, capsys):
        assert cli.main(["--seed", "0", "--cases", "3", "--quiet"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_cli_replays_a_single_case(self, capsys):
        assert cli.main(["--seed", "0", "--cases", "3", "--only", "1"]) == 0


@pytest.mark.fuzz
class TestFuzzSweeps:
    @pytest.mark.parametrize("seed", [5, 17, 31])
    def test_thirty_case_sweep(self, seed):
        suite = run_suite(seed, 30)
        assert suite.ok, [
            (r.desc, r.failures) for r in suite.failures
        ]
