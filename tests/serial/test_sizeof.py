"""Direct tests for transitive byte estimation."""
import numpy as np
import pytest

from repro.serial import transitive_size
from repro.serial.sizeof import BOXED_CELL_BYTES


class TestTransitiveSize:
    def test_scalars(self):
        assert transitive_size(None) == 1
        assert transitive_size(True) == 1
        assert transitive_size(0) >= 2
        assert transitive_size(1.5) == 9
        assert transitive_size(1 + 2j) == 17

    def test_strings_by_utf8_length(self):
        assert transitive_size("abc") == 5
        assert transitive_size("é") == 4  # 2 UTF-8 bytes + 2 overhead

    def test_array_is_raw_bytes_plus_header(self):
        a = np.zeros((10, 10), dtype=np.float32)
        assert transitive_size(a) == 16 + 16 + 400

    def test_cyclic_structures_terminate(self):
        lst = [1, 2]
        lst.append(lst)  # a cycle
        size = transitive_size(lst)
        assert 0 < size < 100

    def test_shared_subtree_counted_per_reference(self):
        inner = [1.0] * 10
        assert transitive_size([inner, inner]) > 1.5 * transitive_size([inner])

    def test_dataclass_fields_counted(self):
        from dataclasses import dataclass

        @dataclass
        class P:
            x: float
            payload: np.ndarray

        p = P(1.0, np.zeros(100))
        assert transitive_size(p) > 800

    def test_opaque_object_charged_a_cell(self):
        class Opaque:
            pass

        assert transitive_size(Opaque()) == BOXED_CELL_BYTES

    def test_big_int(self):
        assert transitive_size(2**200) > transitive_size(7)
