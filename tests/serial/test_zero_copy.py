"""Zero-copy array shipping in the serial layer."""
import numpy as np
import pytest

from repro.serial import copy_stats, deserialize, reset_copy_stats, serialize
from repro.serial.arrays import pack_array, pack_array_into, unpack_array


@pytest.fixture(autouse=True)
def _fresh_stats():
    reset_copy_stats()
    yield
    reset_copy_stats()


class TestRoundTrip:
    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(17.0),
            np.arange(12).reshape(3, 4),
            np.zeros((0, 5)),
            np.array(3.5),  # 0-d
            np.arange(6, dtype=np.int32).reshape(2, 3),
            np.array([1 + 2j, 3 - 4j]),
        ],
    )
    def test_pack_unpack(self, arr):
        buf = pack_array(arr)
        out, end = unpack_array(memoryview(buf))
        assert end == len(buf)
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        assert out.tobytes() == arr.tobytes()

    def test_serializer_uses_same_encoding(self):
        arr = np.linspace(0.0, 1.0, 33)
        assert np.array_equal(deserialize(serialize(arr)), arr)
        assert np.float32(2.5) == deserialize(serialize(np.float32(2.5)))


class TestZeroCopy:
    def test_contiguous_slice_ships_without_copy(self):
        base = np.arange(100.0).reshape(20, 5)
        view = base[3:11]  # row slice of a C-contiguous array: still contiguous
        assert view.flags.c_contiguous and view.base is not None
        out = bytearray()
        pack_array_into(view, out)
        stats = copy_stats()
        assert stats["compacted"] == 0
        assert stats["zero_copy_bytes"] == view.nbytes
        restored, _ = unpack_array(memoryview(bytes(out)))
        assert restored.tobytes() == view.tobytes()

    def test_strided_view_is_compacted(self):
        base = np.arange(100.0).reshape(10, 10)
        view = base.T
        assert not view.flags.c_contiguous
        out = bytearray()
        pack_array_into(view, out)
        stats = copy_stats()
        assert stats["compacted"] == 1
        assert stats["compacted_bytes"] == view.nbytes
        restored, _ = unpack_array(memoryview(bytes(out)))
        assert restored.tobytes() == np.ascontiguousarray(view).tobytes()

    def test_serialize_counts_arrays(self):
        serialize({"a": np.arange(10.0), "b": (np.ones(3), 2)})
        assert copy_stats()["arrays"] == 2
