"""Zero-copy array shipping in the serial layer."""
import numpy as np
import pytest

from repro.serial import (
    copy_stats,
    deserialize,
    ensure_contiguous,
    reset_copy_stats,
    serialize,
)
from repro.serial.arrays import pack_array, pack_array_into, unpack_array


@pytest.fixture(autouse=True)
def _fresh_stats():
    reset_copy_stats()
    yield
    reset_copy_stats()


class TestRoundTrip:
    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(17.0),
            np.arange(12).reshape(3, 4),
            np.zeros((0, 5)),
            np.array(3.5),  # 0-d
            np.arange(6, dtype=np.int32).reshape(2, 3),
            np.array([1 + 2j, 3 - 4j]),
        ],
    )
    def test_pack_unpack(self, arr):
        buf = pack_array(arr)
        out, end = unpack_array(memoryview(buf))
        assert end == len(buf)
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        assert out.tobytes() == arr.tobytes()

    def test_serializer_uses_same_encoding(self):
        arr = np.linspace(0.0, 1.0, 33)
        assert np.array_equal(deserialize(serialize(arr)), arr)
        assert np.float32(2.5) == deserialize(serialize(np.float32(2.5)))


class TestZeroCopy:
    def test_contiguous_slice_ships_without_copy(self):
        base = np.arange(100.0).reshape(20, 5)
        view = base[3:11]  # row slice of a C-contiguous array: still contiguous
        assert view.flags.c_contiguous and view.base is not None
        out = bytearray()
        pack_array_into(view, out)
        stats = copy_stats()
        assert stats["compacted"] == 0
        assert stats["zero_copy_bytes"] == view.nbytes
        restored, _ = unpack_array(memoryview(bytes(out)))
        assert restored.tobytes() == view.tobytes()

    def test_strided_view_is_compacted(self):
        base = np.arange(100.0).reshape(10, 10)
        view = base.T
        assert not view.flags.c_contiguous
        out = bytearray()
        pack_array_into(view, out)
        stats = copy_stats()
        assert stats["compacted"] == 1
        assert stats["compacted_bytes"] == view.nbytes
        restored, _ = unpack_array(memoryview(bytes(out)))
        assert restored.tobytes() == np.ascontiguousarray(view).tobytes()

    def test_serialize_counts_arrays(self):
        serialize({"a": np.arange(10.0), "b": (np.ones(3), 2)})
        assert copy_stats()["arrays"] == 2


class TestContiguityGate:
    """The buffer-view ship gate (Comm.Send, shared-memory segments):
    contiguous data passes through untouched, anything else pays an
    explicit, *counted* compaction -- never a silent fallback."""

    def test_contiguous_passes_through_identically(self):
        arr = np.arange(24.0).reshape(4, 6)
        assert ensure_contiguous(arr) is arr
        assert copy_stats()["noncontiguous_compacted"] == 0

    def test_contiguous_row_slice_passes_through(self):
        view = np.arange(50.0).reshape(10, 5)[2:7]
        assert view.base is not None and view.flags.c_contiguous
        assert ensure_contiguous(view) is view
        assert copy_stats()["noncontiguous_compacted"] == 0

    @pytest.mark.parametrize(
        "make_view",
        [
            lambda a: a.T,  # transposed
            lambda a: a[::2],  # strided rows
            lambda a: a[:, 1:],  # strided columns
            lambda a: np.asfortranarray(a),  # Fortran order
        ],
    )
    def test_noncontiguous_views_are_compacted_and_counted(self, make_view):
        base = np.arange(64.0).reshape(8, 8)
        view = make_view(base)
        assert not view.flags.c_contiguous
        out = ensure_contiguous(view)
        assert out.flags.c_contiguous
        assert out.tobytes() == np.ascontiguousarray(view).tobytes()
        stats = copy_stats()
        assert stats["noncontiguous_compacted"] == 1
        assert stats["compacted_bytes"] == out.nbytes

    def test_comm_buffer_send_hits_the_gate(self):
        """Comm.Send routes every buffer payload through the gate: a
        strided view is compacted (and counted) before injection, and the
        receiver sees the compacted bytes."""
        from repro.cluster import MachineSpec, run_spmd

        base = np.arange(36.0).reshape(6, 6)

        def rank_fn(comm):
            if comm.rank == 0:
                comm.Send(base.T, 1)
                return None
            return comm.Recv(0).tobytes()

        res = run_spmd(MachineSpec(nodes=2, cores_per_node=1), rank_fn,
                       nranks=2)
        assert res.results[1] == np.ascontiguousarray(base.T).tobytes()
        assert copy_stats()["noncontiguous_compacted"] == 1
