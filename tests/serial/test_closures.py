"""Tests for closure and global-segment serialization."""
import numpy as np
import pytest

from repro.serial import (
    Closure,
    GlobalRef,
    GlobalSegment,
    closure,
    deserialize,
    register_function,
    serialize,
)
from repro.serial.sizeof import transitive_size


def scale_add(factor, offset, x):
    return factor * x + offset


register_function(scale_add)


class TestClosures:
    def test_call_applies_env_then_args(self):
        c = closure(scale_add, 2.0, 1.0)
        assert c(10.0) == 21.0

    def test_roundtrip_preserves_behaviour(self):
        c = closure(scale_add, 3.0, -1.0)
        c2 = deserialize(serialize(c))
        assert isinstance(c2, Closure)
        assert c2(5.0) == c(5.0) == 14.0

    def test_bind_extends_env(self):
        c = closure(scale_add, 2.0)
        assert c.bind(100.0)(1.0) == 102.0

    def test_env_with_array_roundtrips(self):
        def first_elem(arr, i):
            return arr[i]

        register_function(first_elem)
        c = closure(first_elem, np.arange(10.0))
        c2 = deserialize(serialize(c))
        assert c2(3) == 3.0

    def test_duplicate_code_id_rejected(self):
        def f():
            pass

        def g():
            pass

        register_function(f, "tests.dupe-id")
        with pytest.raises(ValueError):
            register_function(g, "tests.dupe-id")

    def test_unknown_code_id_fails_at_decode(self):
        from repro.serial import SerializationError
        from repro.serial import closures as cl

        c = Closure("tests.never-registered", ())
        data = serialize(c)
        with pytest.raises(SerializationError):
            deserialize(data)
        assert "tests.never-registered" not in cl._CODE_SEGMENT


class TestGlobalSegments:
    def test_ref_derefs_to_object(self):
        seg = GlobalSegment.get_or_create("tests.seg1")
        big = np.arange(1000.0)
        ref = seg.intern(big)
        assert ref.deref() is big

    def test_ref_serializes_in_constant_bytes(self):
        seg = GlobalSegment.get_or_create("tests.seg2")
        small_ref = seg.intern(np.arange(10.0))
        big_ref = seg.intern(np.arange(1_000_000.0))
        small_wire = len(serialize(small_ref))
        big_wire = len(serialize(big_ref))
        assert big_wire <= small_wire + 2  # offset varint may grow a byte
        assert big_wire < 64

    def test_ref_roundtrip(self):
        seg = GlobalSegment.get_or_create("tests.seg3")
        ref = seg.intern({"k": [1, 2, 3]})
        ref2 = deserialize(serialize(ref))
        assert isinstance(ref2, GlobalRef)
        assert ref2.deref() == {"k": [1, 2, 3]}

    def test_duplicate_segment_name_rejected(self):
        GlobalSegment.get_or_create("tests.seg4")
        with pytest.raises(ValueError):
            GlobalSegment("tests.seg4")


class TestTransitiveSize:
    def test_array_dominates(self):
        a = np.zeros(1000)
        assert abs(transitive_size(a) - 8000) < 100

    def test_closure_env_counted(self):
        c = closure(scale_add, np.zeros(500))
        sz = transitive_size(c)
        assert sz > 4000

    def test_estimate_tracks_serializer(self):
        for obj in [42, "hello", [1.0, 2.0], {"a": (1, 2)}, np.arange(33.0)]:
            est = transitive_size(obj)
            actual = len(serialize(obj))
            assert 0.3 * actual <= est <= 3.5 * actual + 16

    def test_nested_structures(self):
        obj = [np.zeros(100)] * 3  # shared refs counted per occurrence here
        assert transitive_size(obj) >= 800
