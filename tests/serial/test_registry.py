"""Tests for the serializer's type registry and ADT edge cases."""
import numpy as np
import pytest

from repro.serial import deserialize, serializable, serialize, SerializationError
from repro.serial.serializer import register_type


@serializable
class Leaf:
    value: int


@serializable
class Node:
    left: object  # Leaf | Node | None
    right: object

    def __eq__(self, other):
        return (
            isinstance(other, Node)
            and self.left == other.left
            and self.right == other.right
        )


class TestADTEdgeCases:
    def test_recursive_structure(self):
        tree = Node(Node(Leaf(1), Leaf(2)), Node(None, Leaf(3)))
        assert deserialize(serialize(tree)) == tree

    def test_adt_with_none_fields(self):
        assert deserialize(serialize(Node(None, None))) == Node(None, None)

    def test_deep_nesting(self):
        t = Leaf(0)
        for i in range(1, 60):
            t = Node(t, Leaf(i))
        out = deserialize(serialize(t))
        # walk down the left spine
        depth = 0
        while isinstance(out, Node):
            out = out.left
            depth += 1
        assert depth == 59

    def test_adts_inside_arrays_inside_adts(self):
        @serializable
        class Packet:
            header: str
            body: np.ndarray

            def __eq__(self, other):
                return self.header == other.header and np.array_equal(
                    self.body, other.body
                )

        p = Packet("h", np.arange(5.0))
        assert deserialize(serialize([p, p])) == [p, p]


class TestRegistry:
    def test_custom_type_roundtrip(self):
        class Fraction:
            def __init__(self, num, den):
                self.num, self.den = num, den

            def __eq__(self, other):
                return (self.num, self.den) == (other.num, other.den)

        def enc(obj, out):
            from repro.serial.serializer import _encode

            _encode((obj.num, obj.den), out)

        def dec(buf, offset):
            from repro.serial.serializer import _decode

            (num, den), offset = _decode(buf, offset)
            return Fraction(num, den), offset

        register_type("tests.Fraction", Fraction, enc, dec)
        assert deserialize(serialize(Fraction(3, 4))) == Fraction(3, 4)

    def test_conflicting_name_rejected(self):
        class A:
            pass

        class B:
            pass

        register_type("tests.conflict", A, lambda o, b: None, lambda b, o: (A(), o))
        with pytest.raises(ValueError):
            register_type(
                "tests.conflict", B, lambda o, b: None, lambda b, o: (B(), o)
            )

    def test_reregistering_same_type_is_idempotent(self):
        class C:
            pass

        enc = lambda o, b: None  # noqa: E731
        dec = lambda b, o: (C(), o)  # noqa: E731
        register_type("tests.idem", C, enc, dec)
        register_type("tests.idem", C, enc, dec)  # no error

    def test_unknown_wire_name_raises(self):
        from repro.serial.serializer import (
            _T_REGISTERED,
            _encode_str,
        )

        out = bytearray([_T_REGISTERED])
        _encode_str("tests.never-registered-type", out)
        with pytest.raises(SerializationError, match="unknown registered type"):
            deserialize(bytes(out))

    def test_subclass_not_implicitly_registered(self):
        class LeafChild(Leaf):
            pass

        # exact-type dispatch: the subclass has no registration of its own
        with pytest.raises(SerializationError):
            serialize(LeafChild(1))
