"""Edge cases of the closure environment resolver for DistArray handles.

Closure environments may carry DistArray handles; ``resolve_env``
(installed via :func:`set_env_resolver` by :mod:`repro.data.handle`)
swaps them for rank-local array views at call time.  These tests pin
down the failure surface the fuzzer's fault cases walk straight into:

* a wire blob naming a handle id the receiving "program image" never
  registered must fail loudly (fixed-width 8-byte id, so any stale or
  forged id is representable);
* a handle whose rank-local shard was invalidated by a crash must raise
  :class:`MissingShardError` when touched, never silently fall back to
  data the rank no longer owns;
* nested closures with multiple handles resolve each environment at its
  own call time, on whichever rank actually runs it.
"""
import numpy as np
import pytest

from repro.data import DataPlane, DistArray
from repro.data.handle import (
    HandleSource,
    MissingShardError,
    bind_store,
    drop_handles,
    lookup_handle,
)
from repro.partition import block_bounds
from repro.serial import SerializationError, deserialize, serialize
from repro.serial.closures import closure, resolve_env


def _place_on(plane, handle, nranks):
    """Plan a block split and apply each rank's shipping ops."""
    bounds = block_bounds(len(handle), nranks)
    reqs = [{handle.array_id: [lo, hi, False]} for lo, hi in bounds]
    ship = plane.plan_section(reqs)
    for rank in range(1, nranks):
        plane.worker_store(rank).apply(ship.ops[rank])
    return bounds


class TestUnknownHandleId:
    def test_lookup_of_unregistered_id_fails(self):
        with pytest.raises(SerializationError, match="unknown DistArray id"):
            lookup_handle(0xDEAD_BEEF_0BAD_F00D)

    def test_wire_blob_with_stale_id_fails_on_decode(self):
        h = DistArray(np.arange(6.0))
        wire = serialize(h)
        assert deserialize(wire) is h
        # Simulate the sender's registry outliving the handle: the exact
        # bytes that round-tripped a moment ago now name nothing.
        drop_handles()
        del h
        with pytest.raises(SerializationError, match="unknown DistArray id"):
            deserialize(wire)

    def test_full_8_byte_id_range_is_decodable(self):
        # The id is fixed-width on the wire; an id needing all 8 bytes
        # must decode to the same id (and then fail lookup), not corrupt
        # the stream.
        big = (1 << 64) - 2
        src = HandleSource(big, 0, 4)
        out = deserialize(serialize(src))
        assert out == src

    def test_handle_source_context_fails_for_unknown_id(self):
        src = HandleSource(0xFFFF_FFFF, 0, 4)
        with pytest.raises(SerializationError, match="unknown DistArray id"):
            src.context()


class TestInvalidatedShard:
    def test_view_after_crash_invalidation_raises(self):
        plane = DataPlane()
        h = plane.register(np.arange(40.0))
        bounds = _place_on(plane, h, nranks=4)
        store = plane.worker_store(1)
        lo, hi = bounds[1]
        np.testing.assert_array_equal(
            store.view(h.array_id, lo, hi), h.array[lo:hi]
        )
        # Crash recovery wipes every store before re-execution.
        store.invalidate()
        with pytest.raises(MissingShardError):
            store.view(h.array_id, lo, hi)

    def test_resolved_env_after_invalidation_raises(self):
        plane = DataPlane()
        h = plane.register(np.arange(40.0), layout="replicated")
        ship = plane.plan_section([{}, {h.array_id: [0, 40, True]}])
        store = plane.worker_store(1)
        store.apply(ship.ops[1])
        fn = closure(np.sum, h)
        with bind_store(store):
            assert float(fn()) == float(np.sum(h.array))
            store.invalidate(h.array_id)
            with pytest.raises(MissingShardError):
                fn()

    def test_main_rank_is_unaffected_by_worker_invalidation(self):
        plane = DataPlane()
        h = plane.register(np.arange(12.0))
        _place_on(plane, h, nranks=2)
        plane.worker_store(1).invalidate()
        # No bound store means "main rank": the master copy still serves.
        assert float(np.sum(h.resolve())) == float(np.sum(h.array))


class TestNestedClosureEnvs:
    def test_two_handles_in_one_env_both_resolve(self):
        a = DistArray(np.arange(5.0))
        b = DistArray(np.arange(5.0) * 10.0)

        def both(x, y):
            return float(np.sum(x) + np.sum(y))

        fn = closure(both, a, b)
        env = resolve_env(fn.env)
        assert all(isinstance(e, np.ndarray) for e in env)
        assert fn() == float(np.sum(a.array) + np.sum(b.array))

    def test_nested_closure_resolves_inner_env_at_inner_call(self):
        a = DistArray(np.arange(4.0))
        b = DistArray(np.arange(4.0) + 100.0)
        inner = closure(np.sum, a)

        def outer(f, y):
            return float(f()) + float(np.sum(y))

        fn = closure(outer, inner, b)
        # The outer resolve must leave the inner Closure itself alone --
        # its environment resolves when *it* is called, possibly on a
        # different rank.
        env = resolve_env(fn.env)
        assert env[0] is inner
        assert isinstance(env[1], np.ndarray)
        assert fn() == float(np.sum(a.array)) + float(np.sum(b.array))

    def test_nested_env_roundtrips_as_ids_only(self):
        a = DistArray(np.arange(300.0))
        b = DistArray(np.arange(300.0))
        inner = closure(np.sum, a)

        def outer(f, y, x):
            return float(f()) + float(np.sum(y)) + x

        fn = closure(outer, inner, b)
        wire = serialize(fn)
        # Handles ship as 8-byte ids: the blob must not scale with the
        # 2400-byte arrays the environment references.
        assert len(wire) < a.nbytes / 5
        out = deserialize(wire)
        assert out(1.5) == fn(1.5)

    def test_plain_envs_resolve_to_themselves(self):
        fn = closure(lambda c, x: c + x, 2.0)
        assert resolve_env(fn.env) is fn.env
