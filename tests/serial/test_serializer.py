"""Unit tests for the binary serializer."""
import numpy as np
import pytest

from repro.serial import serialize, deserialize, serializable, SerializationError


def roundtrip(obj):
    return deserialize(serialize(obj))


class TestScalars:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, 1, -1, 2**40, -(2**40), 127, 128, -128],
    )
    def test_scalar_roundtrip(self, value):
        out = roundtrip(value)
        assert out == value
        assert type(out) is type(value)

    @pytest.mark.parametrize("value", [0.0, -0.0, 1.5, 1e300, float("inf")])
    def test_float_roundtrip(self, value):
        assert roundtrip(value) == value

    def test_nan_roundtrip(self):
        out = roundtrip(float("nan"))
        assert out != out

    def test_complex_roundtrip(self):
        assert roundtrip(3 + 4j) == 3 + 4j

    def test_str_roundtrip(self):
        assert roundtrip("héllo wörld ☃") == "héllo wörld ☃"

    def test_bytes_roundtrip(self):
        assert roundtrip(b"\x00\xff\x80abc") == b"\x00\xff\x80abc"

    def test_bool_not_confused_with_int(self):
        assert roundtrip(True) is True
        assert roundtrip(1) == 1 and roundtrip(1) is not True


class TestContainers:
    def test_tuple(self):
        assert roundtrip((1, "a", (2.0, None))) == (1, "a", (2.0, None))

    def test_list(self):
        assert roundtrip([1, [2, [3]]]) == [1, [2, [3]]]

    def test_list_vs_tuple_distinguished(self):
        assert type(roundtrip([1, 2])) is list
        assert type(roundtrip((1, 2))) is tuple

    def test_dict(self):
        d = {"a": 1, 2: [3, 4], (5,): None}
        assert roundtrip(d) == d

    def test_set_and_frozenset(self):
        assert roundtrip({1, 2, 3}) == {1, 2, 3}
        out = roundtrip(frozenset({4, 5}))
        assert out == frozenset({4, 5}) and isinstance(out, frozenset)

    def test_slice(self):
        assert roundtrip(slice(1, 10, 2)) == slice(1, 10, 2)
        assert roundtrip(slice(None, None, None)) == slice(None)

    def test_empty_containers(self):
        assert roundtrip(()) == ()
        assert roundtrip([]) == []
        assert roundtrip({}) == {}


class TestArrays:
    def test_1d_float(self):
        a = np.linspace(0, 1, 17)
        np.testing.assert_array_equal(roundtrip(a), a)

    def test_2d_int(self):
        a = np.arange(12, dtype=np.int32).reshape(3, 4)
        out = roundtrip(a)
        np.testing.assert_array_equal(out, a)
        assert out.dtype == a.dtype and out.shape == a.shape

    def test_fortran_order_normalized(self):
        a = np.asfortranarray(np.arange(6.0).reshape(2, 3))
        out = roundtrip(a)
        np.testing.assert_array_equal(out, a)
        assert out.flags["C_CONTIGUOUS"]

    def test_strided_view(self):
        base = np.arange(20.0)
        view = base[::2]
        np.testing.assert_array_equal(roundtrip(view), view)

    def test_empty_array(self):
        a = np.empty((0, 3))
        out = roundtrip(a)
        assert out.shape == (0, 3)

    def test_received_array_is_writable_copy(self):
        a = np.arange(5.0)
        out = roundtrip(a)
        out[0] = 99.0
        assert a[0] == 0.0

    def test_complex_dtype(self):
        a = np.array([1 + 2j, 3 - 4j])
        np.testing.assert_array_equal(roundtrip(a), a)

    def test_np_scalar_preserves_scalarness(self):
        v = np.float32(2.5)
        out = roundtrip(v)
        assert out == v and out.dtype == np.float32
        assert isinstance(out, np.generic)  # not promoted to an array

    def test_0d_array_keeps_rank(self):
        a = np.array(7.5)
        out = roundtrip(a)
        assert out.shape == () and out == 7.5


@serializable
class Point:
    x: float
    y: float


@serializable
class Box:
    lo: Point
    hi: Point
    payload: np.ndarray

    def __eq__(self, other):
        return (
            self.lo == other.lo
            and self.hi == other.hi
            and np.array_equal(self.payload, other.payload)
        )


class TestADTs:
    def test_flat_adt(self):
        p = Point(1.0, 2.0)
        assert roundtrip(p) == p

    def test_nested_adt_with_array(self):
        b = Box(Point(0, 0), Point(1, 1), np.arange(4.0))
        assert roundtrip(b) == b

    def test_adt_inside_container(self):
        lst = [Point(0, 1), Point(2, 3)]
        assert roundtrip(lst) == lst


class TestErrors:
    def test_unregistered_type_raises(self):
        class Opaque:
            pass

        with pytest.raises(SerializationError):
            serialize(Opaque())

    def test_trailing_garbage_raises(self):
        data = serialize(42) + b"\x00"
        with pytest.raises(SerializationError):
            deserialize(data)

    def test_bad_tag_raises(self):
        with pytest.raises(SerializationError):
            deserialize(b"\xfe")
