"""Smoke tests: every example script runs to completion in-process.

Examples are documentation that executes; these tests keep them honest.
Each example module has a ``main()`` that asserts its own numerical
claims, so "it ran" means "its claims held".
"""
import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def _load(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(path)])
    module = _load(path)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 50  # it narrated something


def test_every_example_has_a_docstring_and_main():
    assert len(EXAMPLES) >= 5
    for path in EXAMPLES:
        text = path.read_text()
        assert text.lstrip().startswith(('"""', "#!")), path
        assert "def main(" in text, path
