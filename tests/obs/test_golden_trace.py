"""Golden-trace test: the span tree of a fixed run is part of the API.

A fixed-seed sgemm run on a 2-node machine must produce exactly this
span-tree *shape* -- kinds, names, nesting, rank lanes -- compared
structurally, never by timestamps.  The golden literal below encodes
real structural promises: app phases parent driver sections, the
transpose runs as a 1-node ``localpar`` (plan consult only, no
shipping), and the matmul's ``par`` section fans out into per-rank
kernel and collective spans plus one ship span for the non-resident
rank.  A refactor that changes this shape is an observability API
change and must update the golden deliberately.
"""
import pytest

from repro.obs.export import render_tree, span_tree
from repro.obs.runapp import capture_app

pytestmark = pytest.mark.obs

#: sgemm, sandbox params (n=64, seed=7), PAPER_MACHINE scaled to 2 nodes.
GOLDEN_SGEMM_2N = (
    ("phase", "transpose", -1, (
        ("section", "localpar", -1, (
            ("plan", "plan_for", -1, ()),
        )),
    )),
    ("phase", "matmul", -1, (
        ("section", "par", -1, (
            ("plan", "plan_for", -1, ()),
            ("kernel", "node_execute", 0, ()),
            ("collective", "gather", 0, ()),
            ("ship", "ship->r1", 1, ()),
            ("kernel", "node_execute", 1, ()),
            ("collective", "gather", 1, ()),
        )),
    )),
)


class TestGoldenTrace:
    def test_sgemm_2node_tree_matches_golden(self):
        rec, _run = capture_app("sgemm", 2)
        tree = span_tree(rec.spans)
        assert tree == GOLDEN_SGEMM_2N, (
            "span tree drifted from golden:\n" + render_tree(tree)
        )

    def test_tree_is_run_to_run_stable(self):
        # The structural shape must not depend on thread scheduling:
        # span_tree orders children on the deterministic virtual
        # timeline, not on append order.
        trees = {span_tree(capture_app("sgemm", 2)[0].spans)
                 for _ in range(3)}
        assert len(trees) == 1

    def test_timestamps_nest_within_parents(self):
        rec, _run = capture_app("sgemm", 2)
        by_sid = {s.sid: s for s in rec.spans}
        for s in rec.spans:
            assert s.t1 is not None and s.t1 >= s.t0
            if s.parent is not None:
                p = by_sid[s.parent]
                assert p.t0 <= s.t0
                # Parents close at-or-after their children on the
                # virtual timeline (rank clocks run inside the driver
                # section's interval).
                assert p.t1 >= s.t1

    def test_every_app_produces_phase_rooted_spans(self):
        for app in ("mriq", "tpacf", "cutcp"):
            rec, run = capture_app(app, 2)
            roots = [s for s in rec.spans if s.parent is None]
            assert roots, f"{app}: no spans recorded"
            assert {s.kind for s in roots} <= {"phase", "section"}, (
                f"{app}: unexpected root kinds "
                f"{sorted({s.kind for s in roots})}"
            )
            assert rec.spans_of_kind("phase"), f"{app}: no phase spans"
            assert rec.spans_of_kind("section"), f"{app}: no section spans"
            assert run.detail["obs"]["spans"] == len(rec.spans)

    def test_render_tree_mentions_lanes(self):
        rec, _run = capture_app("sgemm", 2)
        text = render_tree(span_tree(rec.spans))
        assert "phase:matmul [driver]" in text
        assert "kernel:node_execute [rank 1]" in text
