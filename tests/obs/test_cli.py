"""The ``python -m repro.obs`` CLI: trace, summarize, diff, regress.

The diff fixtures under ``fixtures/`` seed a known perf regression
(makespan +50%, bytes doubled, reshipped bytes appearing from zero);
``diff`` must exit 1 on it and 0 on identical runs.  ``regress`` gates
the checked-in ``BENCH_apps.json``.
"""
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.__main__ import main
from repro.obs.export import load_jsonl
from repro.obs.report import check_bench, diff_runs, summarize

pytestmark = pytest.mark.obs

FIXTURES = Path(__file__).parent / "fixtures"
REPO = Path(__file__).resolve().parents[2]


class TestDiff:
    def test_diff_detects_seeded_regression(self, capsys):
        rc = main(["diff", str(FIXTURES / "base.jsonl"),
                   str(FIXTURES / "regressed.jsonl")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSIONS" in out
        assert "time.makespan" in out
        assert "cluster.bytes_sent" in out
        assert "recovery.reshipped_bytes" in out

    def test_diff_same_run_is_clean(self, capsys):
        rc = main(["diff", str(FIXTURES / "base.jsonl"),
                   str(FIXTURES / "base.jsonl")])
        assert rc == 0
        assert "no regressions" in capsys.readouterr().out

    def test_improvement_direction_does_not_flag(self):
        # regressed -> base is an improvement, not a regression.
        diff = diff_runs(load_jsonl(str(FIXTURES / "regressed.jsonl")),
                         load_jsonl(str(FIXTURES / "base.jsonl")))
        assert diff["regressions"] == []
        assert diff["improvements"]

    def test_threshold_is_respected(self):
        base = load_jsonl(str(FIXTURES / "base.jsonl"))
        other = load_jsonl(str(FIXTURES / "regressed.jsonl"))
        # 50% makespan growth passes a 60% threshold...
        loose = diff_runs(base, other, threshold=0.6)
        assert all(r["counter"] != "time.makespan"
                   for r in loose["regressions"])
        # ...but growth-from-zero always flags.
        assert any(r["counter"] == "recovery.reshipped_bytes"
                   for r in loose["regressions"])

    def test_diff_json_mode(self, capsys):
        rc = main(["diff", "--json", str(FIXTURES / "base.jsonl"),
                   str(FIXTURES / "regressed.jsonl")])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert {r["counter"] for r in payload["regressions"]} >= {
            "time.makespan", "cluster.bytes_sent"}


class TestSummarize:
    def test_summarize_fixture(self, capsys):
        rc = main(["summarize", str(FIXTURES / "base.jsonl")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "spans: 2" in out
        assert "time.makespan = 1.0" in out

    def test_summarize_json_mode(self, capsys):
        rc = main(["summarize", "--json", str(FIXTURES / "base.jsonl")])
        assert rc == 0
        s = json.loads(capsys.readouterr().out)
        assert s["span_kinds"] == {"kernel": 1, "section": 1}
        assert s["ranks"] == [0]
        assert s["sections"][0]["label"] == "par"

    def test_summarize_matches_library(self):
        data = load_jsonl(str(FIXTURES / "base.jsonl"))
        s = summarize(data)
        assert s["events"] == 2
        assert s["counters"]["cluster.bytes_sent"] == 4096


class TestTraceCommand:
    def test_trace_exports_validating_chrome_and_jsonl(self, tmp_path,
                                                      capsys):
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "run.jsonl"
        rc = main(["trace", "--app", "sgemm", "--nodes", "2",
                   "--chrome", str(chrome), "--jsonl", str(jsonl),
                   "--tree"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "phase:matmul" in out  # --tree output
        payload = json.loads(chrome.read_text())
        assert payload["traceEvents"]
        data = load_jsonl(str(jsonl))
        assert data["spans"] and data["events"]
        assert data["counters"]["sections.count"] >= 2


class TestRegress:
    def test_checked_in_bench_passes_gate(self, capsys):
        rc = main(["regress", str(REPO / "BENCH_apps.json")])
        assert rc == 0
        assert "passed" in capsys.readouterr().out

    def test_seeded_bad_payload_fails_gate(self, tmp_path, capsys):
        bad = json.loads((REPO / "BENCH_apps.json").read_text())
        bad["obs_overhead"]["overhead"] = 0.2
        p = tmp_path / "bad.json"
        p.write_text(json.dumps(bad))
        rc = main(["regress", str(p)])
        assert rc == 1
        assert "FAILED" in capsys.readouterr().out

    def test_missing_overhead_cell_fails_gate(self):
        payload = json.loads((REPO / "BENCH_apps.json").read_text())
        del payload["obs_overhead"]
        assert any("obs_overhead" in p for p in check_bench(payload))

    def test_broken_parity_cell_fails_gate(self):
        payload = json.loads((REPO / "BENCH_apps.json").read_text())
        payload["results"][0]["meter_equal"] = False
        problems = check_bench(payload)
        assert any("meter_equal" in p for p in problems)

    def test_module_entrypoint_runs(self):
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs", "regress",
             "BENCH_apps.json"],
            cwd=str(REPO), capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "passed" in proc.stdout
