"""Chrome trace-event export: schema validity and lane layout.

The exported JSON must load in ``chrome://tracing`` / Perfetto, so
every event needs well-formed ``ph``/``ts``/``pid``/``tid`` fields; the
run's spans live in one process with the driver on tid 0 and one lane
per rank, and endpoint-less fault events (``peer == -1``) are routed to
a separate fault process so they never hide under message traffic.
"""
import json

import pytest

from repro.cluster.faults import FaultPlan, RankCrash
from repro.cluster.machine import MachineSpec
from repro.data.plane import DataPlane
from repro.obs.export import (
    FAULT_PID,
    RUN_PID,
    chrome_trace,
    validate_chrome,
    write_chrome,
)
from repro.obs.runapp import capture_app
from repro.obs.spans import capture
from repro.runtime import triolet_runtime
from repro.testing import kernels as K

import numpy as np
import repro.triolet as tri

pytestmark = pytest.mark.obs


class TestChromeSchema:
    def test_capture_validates_clean(self):
        rec, _run = capture_app("sgemm", 2)
        payload = chrome_trace(rec)
        assert validate_chrome(payload) == []

    def test_payload_is_json_serializable(self, tmp_path):
        rec, _run = capture_app("sgemm", 2)
        path = tmp_path / "trace.json"
        write_chrome(rec, str(path))
        payload = json.loads(path.read_text())
        assert validate_chrome(payload) == []
        assert payload["displayTimeUnit"] == "ms"

    def test_lane_layout(self):
        rec, _run = capture_app("sgemm", 2)
        evs = chrome_trace(rec)["traceEvents"]
        spans = [e for e in evs if e["ph"] == "X"]
        assert all(e["pid"] == RUN_PID for e in spans)
        # Driver spans on tid 0, rank r spans on tid r + 1.
        tids = {e["tid"] for e in spans}
        assert 0 in tids and {1, 2} <= tids
        names = {e["name"] for e in evs if e["ph"] == "M"}
        assert {"process_name", "thread_name"} <= names

    def test_comm_events_are_instants_in_run_process(self):
        rec, _run = capture_app("sgemm", 2)
        evs = chrome_trace(rec)["traceEvents"]
        comm = [e for e in evs if e.get("cat") == "comm"]
        assert comm, "no comm instants exported"
        for e in comm:
            assert e["ph"] == "i" and e["s"] == "t"
            assert e["pid"] == RUN_PID

    def test_fault_events_land_in_fault_process(self):
        xs = np.arange(256, dtype=np.float64)
        machine = MachineSpec(nodes=4, cores_per_node=2)
        plan = FaultPlan(faults=(RankCrash(rank=1, at=1e-6),))
        with capture() as rec:
            with triolet_runtime(machine, faults=plan,
                                 plane=DataPlane()) as rt:
                h = rt.distribute(xs)
                tri.sum(tri.map(K.k_square, tri.par(h)))
        payload = chrome_trace(rec)
        assert validate_chrome(payload) == []
        faults = [e for e in payload["traceEvents"]
                  if e.get("cat") == "fault"]
        assert faults, "crash run exported no fault instants"
        for e in faults:
            assert e["pid"] == FAULT_PID
            # Fault lanes are keyed by the faulting rank itself.
            assert e["tid"] >= 0
            assert e["args"]["peer"] < 0
        assert any(e["tid"] == 1 for e in faults)

    def test_validator_rejects_malformed_events(self):
        assert validate_chrome({"traceEvents": [
            {"ph": "Z", "name": "x", "pid": 1, "tid": 0, "ts": 0.0},
        ]})
        assert validate_chrome({"traceEvents": [
            {"ph": "X", "name": "x", "pid": 1, "tid": 0, "ts": -1.0,
             "dur": 1.0},
        ]})
        assert validate_chrome({"traceEvents": [
            {"ph": "X", "name": "x", "pid": 1, "tid": 0, "ts": 0.0},
        ]}), "X event without dur must be rejected"
        assert validate_chrome({"traceEvents": [
            {"ph": "i", "name": "x", "pid": 1, "tid": "0", "ts": 0.0,
             "s": "t"},
        ]}), "string tid must be rejected"
        assert validate_chrome({"traceEvents": [
            {"ph": "i", "name": "x", "pid": 1, "tid": 0, "ts": 0.0,
             "s": "q"},
        ]}), "bad instant scope must be rejected"
        assert validate_chrome({"not_trace_events": []})
