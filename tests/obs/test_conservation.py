"""Conservation: registry totals must equal the legacy counter sources.

The registry is filled through *independent* accumulation streams (live
planner/plane hooks, per-section driver adaptation), so equality with
the legacy counters -- the section ledger, ``DataPlane.totals``,
``PlannerStats``, ``RecoveryReport`` -- is a real cross-check, not a
tautology.  The crash drill variant additionally requires the recovery
report's reshipped bytes to be visible as recovery-tagged ship spans.
"""
import numpy as np
import pytest

from repro.cluster.faults import FaultPlan, RankCrash
from repro.cluster.machine import MachineSpec
from repro.data.plane import DataPlane
from repro.obs.registry import conservation_violations
from repro.obs.runapp import capture_app
from repro.obs.spans import capture
from repro.runtime import triolet_runtime
from repro.testing import kernels as K
from repro.testing.gen import build_iter, generate_program, run_consumer
from repro.testing.runner import _caching_distribute, bits_equal

import repro.triolet as tri

pytestmark = pytest.mark.obs


class TestConservation:
    def test_fuzzed_handle_backed_run_conserves(self):
        # Two handle-backed sections of a generated program: exercises
        # residency (second section ships nothing new) and every live
        # counter stream at once.
        prog = generate_program(99, 2)
        machine = MachineSpec(nodes=4, cores_per_node=2)
        with capture() as rec:
            with triolet_runtime(machine, plane=DataPlane()) as rt:
                dist = _caching_distribute(rt)
                v1 = run_consumer(prog, build_iter(prog, dist, hint="par"))
                v2 = run_consumer(prog, build_iter(prog, dist, hint="par"))
        assert bits_equal(v1, v2)
        assert conservation_violations(rec, rt) == []
        assert rec.registry.get("sections.count") == len(rt.sections)

    @pytest.mark.parametrize("nodes", [1, 2, 5])
    def test_fuzzed_runs_conserve_across_node_counts(self, nodes):
        prog = generate_program(7, 0)
        machine = MachineSpec(nodes=nodes, cores_per_node=2)
        with capture() as rec:
            with triolet_runtime(machine, plane=DataPlane()) as rt:
                run_consumer(prog, build_iter(prog, rt.distribute,
                                              hint="par"))
        assert conservation_violations(rec, rt) == []

    def test_app_capture_conserves_planner_and_serial(self):
        rec, _run = capture_app("tpacf", 2)
        # The planner live stream must equal the stats delta the capture
        # snapshot-based check reconstructs -- spot-check hits+misses
        # equals the number of plan consults recorded as plan spans plus
        # the per-slice consults that bypass the driver span.
        hits = rec.registry.get("planner.hits")
        misses = rec.registry.get("planner.misses")
        assert hits + misses > 0
        # Serialization copy deltas folded at capture close.
        assert any(name.startswith("serial.")
                   for name in rec.registry.names())

    def test_crash_drill_conserves_and_tags_recovery_spans(self):
        xs = np.arange(512, dtype=np.float64) % 10
        machine = MachineSpec(nodes=4, cores_per_node=2)
        plan = FaultPlan(faults=(RankCrash(rank=1, at=1e-6),))
        expect = tri.sum(tri.map(K.k_square, tri.seq(xs)))
        with capture() as rec:
            with triolet_runtime(machine, faults=plan,
                                 plane=DataPlane()) as rt:
                h = rt.distribute(xs)
                first = tri.sum(tri.map(K.k_square, tri.par(h)))
                second = tri.sum(tri.map(K.k_square, tri.par(h)))
        assert bits_equal(expect, first) and bits_equal(expect, second)
        rep = rt.recovery_report
        assert rep.reexecuted_chunks > 0 and rep.reshipped_bytes > 0

        assert conservation_violations(rec, rt) == []
        # The reshipped bytes must be visible at the span layer as
        # recovery-tagged ship spans, byte for byte.
        tagged = [s for s in rec.spans_of_kind("ship")
                  if s.attrs.get("recovery")]
        assert tagged, "crash recovery produced no recovery-tagged spans"
        assert sum(s.attrs.get("input_bytes", 0) for s in tagged) \
            == rep.reshipped_bytes
        assert rec.registry.get("recovery.reexecuted_chunks") \
            == rep.reexecuted_chunks
        # The crashed attempt's section records more than one attempt.
        par_spans = [s for s in rec.spans
                     if s.kind == "section" and s.name == "par"]
        assert any(s.attrs.get("attempts", 1) > 1 for s in par_spans)

    def test_conservation_check_detects_seeded_drift(self):
        # The check must be falsifiable: corrupt one registry counter
        # and conservation must flag exactly that family.
        prog = generate_program(7, 0)
        machine = MachineSpec(nodes=2, cores_per_node=2)
        with capture() as rec:
            with triolet_runtime(machine, plane=DataPlane()) as rt:
                run_consumer(prog, build_iter(prog, rt.distribute,
                                              hint="par"))
        assert conservation_violations(rec, rt) == []
        rec.registry.inc("cluster.bytes_sent", 1)
        v = conservation_violations(rec, rt)
        assert v and any("cluster.bytes_sent" in s for s in v)
