"""Observability test hygiene.

Captures install a process-global recorder and app runs register
data-plane handles; both leak into later tests unless dropped.  The
root conftest already force-disables the recorder around every test --
here we additionally clear the handle registry, since the obs tests run
whole apps through ``rt.distribute``.
"""
import pytest

from repro.data.handle import drop_handles


@pytest.fixture(autouse=True)
def _fresh_handles():
    drop_handles()
    yield
    drop_handles()
