"""Span-layer causality: every absorbed recv joins a departed send.

The recorder absorbs each section's CommEvents (including those of
*crashed* attempts) and links them to the section span; the span-layer
causality check must hold on every capture, mirroring the cluster
trace's own invariant but over the joined, cross-section stream.
"""
import numpy as np
import pytest

from repro.cluster.faults import FaultPlan, RankCrash
from repro.cluster.machine import MachineSpec
from repro.cluster.trace import FAULT_EVENT_KINDS
from repro.data.plane import DataPlane
from repro.obs.export import check_event_causality
from repro.obs.runapp import capture_app
from repro.obs.spans import capture
from repro.runtime import triolet_runtime
from repro.testing import kernels as K
from repro.testing.gen import build_iter, generate_program, run_consumer

import repro.triolet as tri

pytestmark = pytest.mark.obs


class TestSpanLayerCausality:
    @pytest.mark.parametrize("app,nodes", [
        ("sgemm", 2), ("sgemm", 4), ("mriq", 3), ("cutcp", 2),
    ])
    def test_app_captures_are_causal(self, app, nodes):
        rec, _run = capture_app(app, nodes)
        assert rec.events, f"{app}@{nodes}: no comm events absorbed"
        assert check_event_causality(rec.events) == []

    def test_events_link_to_their_section_span(self):
        rec, _run = capture_app("sgemm", 2)
        section_sids = {s.sid for s in rec.spans if s.kind == "section"}
        for e in rec.events:
            assert e["section"] in section_sids

    def test_crashed_attempt_events_are_absorbed_and_causal(self):
        xs = np.arange(256, dtype=np.float64)
        machine = MachineSpec(nodes=4, cores_per_node=2)
        plan = FaultPlan(faults=(RankCrash(rank=1, at=1e-6),))
        with capture() as rec:
            with triolet_runtime(machine, faults=plan,
                                 plane=DataPlane()) as rt:
                h = rt.distribute(xs)
                tri.sum(tri.map(K.k_square, tri.par(h)))
        faults = [e for e in rec.events
                  if e["kind"] in FAULT_EVENT_KINDS and e["peer"] < 0]
        assert faults, "crashed attempt left no fault events in the capture"
        assert any(e["rank"] == 1 for e in faults)
        # Message events -- across the failed and the retried attempt --
        # must still satisfy FIFO send-before-recv per channel.
        assert check_event_causality(rec.events) == []

    def test_fuzzed_multi_section_capture_is_causal(self):
        prog = generate_program(13, 1)
        machine = MachineSpec(nodes=5, cores_per_node=2)
        with capture() as rec:
            with triolet_runtime(machine, plane=DataPlane()) as rt:
                run_consumer(prog, build_iter(prog, rt.distribute,
                                              hint="par"))
                run_consumer(prog, build_iter(prog, rt.distribute,
                                              hint="par"))
        assert check_event_causality(rec.events) == []

    def test_checker_detects_orphan_recv(self):
        events = [
            {"kind": "recv", "time": 1.0, "rank": 1, "peer": 0,
             "tag": 7, "nbytes": 8},
        ]
        assert check_event_causality(events)

    def test_checker_detects_time_travel(self):
        events = [
            {"kind": "send", "time": 2.0, "rank": 0, "peer": 1,
             "tag": 7, "nbytes": 8},
            {"kind": "recv", "time": 1.0, "rank": 1, "peer": 0,
             "tag": 7, "nbytes": 8},
        ]
        assert check_event_causality(events)
