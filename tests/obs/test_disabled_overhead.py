"""Disabled-mode overhead: observability must be structurally absent.

With no capture installed, instrumentation sites take a one-global-read
early-out: no ``Span`` objects are allocated (the class-wide
``Span.allocated`` counter is the proof), ``active()`` is ``None``, and
``obs_span`` hands back the shared ``NULL_SPAN`` singleton.  And because
spans only *read* virtual clocks, enabling a capture must not perturb
the run at all: a differential-fuzzer case executes bit-identically --
values, CostMeter triples, virtual makespan, wire bytes -- with
observability on vs. off.
"""
import pytest

from repro.cluster.machine import MachineSpec
from repro.core.fusion.planner import reset_planner
from repro.obs.spans import NULL_SPAN, Span, active, capture, obs_span
from repro.runtime import triolet_runtime
from repro.serial import reset as reset_copy_stats
from repro.testing.gen import build_iter, generate_program, run_consumer
from repro.testing.runner import _meter_triple, bits_equal

pytestmark = pytest.mark.obs

MACHINE = MachineSpec(nodes=3, cores_per_node=2)
SEED, CASE = 2026, 4


def _run_fuzzer_case():
    """One deterministic fuzzer program on a fixed 3-node machine."""
    reset_planner()
    reset_copy_stats()
    prog = generate_program(SEED, CASE)
    with triolet_runtime(MACHINE) as rt:
        value = run_consumer(prog, build_iter(prog, hint="par"))
    wire = [(s.bytes_shipped, s.messages, s.makespan) for s in rt.sections]
    return value, _meter_triple(rt.meter_total), rt.elapsed, wire


class TestDisabledMode:
    def test_no_span_objects_allocated_when_off(self):
        assert active() is None
        before = Span.allocated
        value_off, *_rest = _run_fuzzer_case()
        assert Span.allocated == before, (
            f"{Span.allocated - before} span objects allocated with "
            "observability disabled"
        )
        assert value_off is not None

    def test_obs_span_returns_shared_null_singleton(self):
        assert active() is None
        sp = obs_span("section", "anything", rank=3)
        assert sp is NULL_SPAN
        with sp as inner:
            assert inner is NULL_SPAN
            assert inner.set(anything=1) is NULL_SPAN

    def test_run_is_bit_identical_on_vs_off(self):
        value_off, meter_off, elapsed_off, wire_off = _run_fuzzer_case()
        with capture() as rec:
            value_on, meter_on, elapsed_on, wire_on = _run_fuzzer_case()
        assert bits_equal(value_off, value_on)
        assert meter_off == meter_on
        assert elapsed_off == elapsed_on
        assert wire_off == wire_on
        # ... while the capture really did observe the run.
        assert rec.spans and not rec.registry.empty()

    def test_registry_stays_empty_when_off(self):
        with capture() as rec_probe:
            pass
        assert rec_probe.registry.empty()
        _run_fuzzer_case()  # no capture installed
        assert rec_probe.registry.empty(), (
            "a disabled-mode run leaked counters into a closed capture"
        )

    def test_capture_cannot_nest(self):
        with capture():
            with pytest.raises(RuntimeError):
                with capture():
                    pass
        assert active() is None

    def test_bench_overhead_cell_present_and_within_budget(self):
        # The wall-clock measurement itself lives in repro.bench (too
        # noisy for a unit test); here we gate the *checked-in* payload,
        # which CI regenerates.
        from pathlib import Path

        from repro.obs.report import check_bench, load_bench

        payload = load_bench(
            str(Path(__file__).resolve().parents[2] / "BENCH_apps.json"))
        obs = payload.get("obs_overhead")
        assert obs is not None, "BENCH_apps.json has no obs_overhead cell"
        assert obs["overhead"] < 0.05
        assert not [p for p in check_bench(payload) if "obs" in p]
