"""Distributed build/collect assembly regressions found by the fuzzer.

Each test pins a bug the differential fuzzer (``python -m
repro.testing``) caught in the driver's result assembly: every case is
checked bit-identical against the sequential execution of the same
pipeline, on a machine shape that forces the buggy partition.
"""
import numpy as np
import pytest

import repro.triolet as tri
from repro.cluster import MachineSpec
from repro.runtime import triolet_runtime
from repro.serial import register_function

WIDE = MachineSpec(nodes=6, cores_per_node=2)


@register_function
def _pair_lt(p):
    return p[0] < p[1]


@register_function
def _drop_all(p):
    return False


@register_function
def _pair_sum(p):
    return p[0] + p[1]


def _both(make):
    """(sequential, distributed-on-WIDE) results of the same pipeline."""
    seq_val = make(tri.seq)
    with triolet_runtime(WIDE):
        dist_val = make(tri.par)
    return seq_val, dist_val


class TestGridBuildAssembly:
    def test_pair_valued_2d_build_keeps_element_axis(self):
        # np.block joins along the *trailing* axes, which scrambles
        # builds whose elements are themselves arrays (pairs).
        u, v = np.arange(6.0), np.arange(5.0)
        seq_val, dist_val = _both(
            lambda hint: tri.build(hint(tri.outerproduct(u, v)))
        )
        assert seq_val.shape == (6, 5, 2)
        assert dist_val.tobytes() == seq_val.tobytes()

    def test_empty_grid_blocks_regain_element_dims(self):
        # With more ranks than rows, some grid blocks hold zero elements
        # and materialize without the trailing element axis; assembly
        # must restore it before concatenating next to (h, w, 2) blocks.
        u, v = np.arange(3.0), np.arange(3.0)
        seq_val, dist_val = _both(
            lambda hint: tri.build(hint(tri.outerproduct(u, v)))
        )
        assert dist_val.shape == seq_val.shape == (3, 3, 2)
        assert dist_val.tobytes() == seq_val.tobytes()

    def test_zero_width_domain_build_keeps_row_extent(self):
        # outer[3x0]: every block is empty; the assembled result must
        # still be (3, 0), not collapse to a single empty row block.
        u, v = np.arange(3.0), np.empty(0)
        seq_val, dist_val = _both(
            lambda hint: tri.build(hint(tri.outerproduct(u, v)))
        )
        assert dist_val.shape == seq_val.shape
        assert seq_val.shape[:2] == (3, 0)

    def test_zero_height_domain_build(self):
        u, v = np.empty(0), np.arange(4.0)
        seq_val, dist_val = _both(
            lambda hint: tri.build(hint(tri.outerproduct(u, v)))
        )
        assert dist_val.shape == seq_val.shape


class TestNestedBuildPartials:
    def test_fully_filtered_chunks_concatenate(self):
        # A chunk whose pairs are all filtered out yields a 0-element
        # 1-D partial next to (k, 2) partials; assembly must not raise
        # and must drop nothing that survived the filter.
        u = np.arange(7.0)
        v = np.array([3.0])
        seq_val, dist_val = _both(
            lambda hint: tri.build(
                tri.filter(_pair_lt, hint(tri.outerproduct(u, v)))
            )
        )
        assert dist_val.tobytes() == np.asarray(seq_val).tobytes()

    def test_everything_filtered_matches_sequential(self):
        u, v = np.arange(5.0), np.arange(4.0)
        seq_val, dist_val = _both(
            lambda hint: tri.build(
                tri.filter(_drop_all, hint(tri.outerproduct(u, v)))
            )
        )
        assert np.asarray(dist_val).size == np.asarray(seq_val).size == 0


class TestOrderedCollect:
    def test_collect_of_2d_domain_preserves_row_major_order(self):
        # List concatenation is associative but not commutative: a 2-D
        # grid partition merges partials in the wrong order, so ordered
        # consumers must force 1-D partitioning.
        u, v = np.arange(8.0), np.arange(7.0)
        seq_val, dist_val = _both(
            lambda hint: tri.collect_list(
                tri.map(_pair_sum, hint(tri.outerproduct(u, v)))
            )
        )
        assert dist_val == seq_val

    def test_ordered_collect_sections_report_1d_partitions(self):
        u, v = np.arange(8.0), np.arange(7.0)
        with triolet_runtime(WIDE) as rt:
            tri.collect_list(tri.map(_pair_sum, tri.par(tri.outerproduct(u, v))))
        assert all(not s.partition.startswith("2d") for s in rt.sections)
