"""Regression tests: ordering guarantees and the runtime report."""
import numpy as np
import pytest

import repro.triolet as tri
from repro.cluster.machine import MachineSpec
from repro.runtime import triolet_runtime
from repro.serial import register_function


@register_function
def _pos(x):
    return x > 0


class TestOrderPreservation:
    """The reduction tree combines children in ascending rank order, so
    order-sensitive (but associative) monoids like list concatenation
    come back in element order.  This is load-bearing for collect and
    build; pin it down."""

    @pytest.mark.parametrize("nodes,cores", [(1, 1), (2, 3), (5, 2), (8, 16)])
    def test_par_collect_is_in_order(self, nodes, cores):
        xs = np.arange(53.0)  # odd size vs. any machine shape
        with triolet_runtime(MachineSpec(nodes=nodes, cores_per_node=cores)):
            out = tri.collect_list(tri.par(xs))
        assert out == list(xs)

    @pytest.mark.parametrize("nodes", [2, 3, 7])
    def test_par_collect_of_filtered_in_order(self, nodes):
        xs = np.arange(40.0) - 20.0
        with triolet_runtime(MachineSpec(nodes=nodes, cores_per_node=2)):
            out = tri.collect_list(tri.filter(_pos, tri.par(xs)))
        assert out == [x for x in xs if x > 0]

    @pytest.mark.parametrize("nodes", [2, 5, 8])
    def test_par_build_is_in_order(self, nodes):
        xs = np.arange(61.0)
        with triolet_runtime(MachineSpec(nodes=nodes, cores_per_node=4)):
            out = tri.build(tri.map(lambda x: -x, tri.par(xs)))
        np.testing.assert_array_equal(out, -xs)

    def test_scan_after_par_build(self):
        """Order survives across section boundaries."""
        xs = np.arange(30.0)
        with triolet_runtime(MachineSpec(nodes=4, cores_per_node=2)):
            doubled = tri.build(tri.map(lambda x: 2 * x, tri.par(xs)))
        running = tri.collect_list(tri.scan(lambda a, b: a + b, 0.0, doubled))
        np.testing.assert_allclose(running, np.cumsum(2 * xs))


class TestReport:
    def test_report_lists_every_section(self):
        xs = np.arange(100.0)
        with triolet_runtime(MachineSpec(nodes=2, cores_per_node=2)) as rt:
            tri.sum(tri.par(xs))
            tri.sum(tri.localpar(xs))
        text = rt.report()
        assert "2 sections" in text
        assert "par" in text and "localpar" in text
        assert "two-level" in text and "worksteal" in text

    def test_report_shows_configuration(self):
        with triolet_runtime(
            MachineSpec(nodes=2, cores_per_node=2),
            topology="flat",
            scheduler="static",
        ) as rt:
            tri.sum(tri.par(np.arange(10.0)))
        assert "flat" in rt.report() and "static" in rt.report()

    def test_last_section_raises_when_empty(self):
        with triolet_runtime(MachineSpec(nodes=2, cores_per_node=2)) as rt:
            with pytest.raises(RuntimeError):
                _ = rt.last_section
