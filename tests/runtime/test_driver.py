"""End-to-end tests of the Triolet runtime on the simulated cluster."""
import numpy as np
import pytest

import repro.triolet as tri
from repro.cluster import BufferOverflowError, MachineSpec, RuntimeLimits
from repro.runtime import (
    CostContext,
    FREE_ALLOC,
    LIBC_MALLOC,
    BOEHM_GC,
    triolet_runtime,
)
from repro.serial import register_function

MACHINE = MachineSpec(nodes=4, cores_per_node=4)


@register_function
def sq(x):
    return x * x


@register_function
def pos(x):
    return x > 0


class TestDistributedCorrectness:
    def test_par_sum_matches_sequential(self):
        xs = np.arange(1000.0)
        with triolet_runtime(MACHINE):
            out = tri.sum(tri.par(xs))
        assert out == pytest.approx(np.sum(xs))

    def test_par_dot_product(self):
        """§2's dot: sum(x*y for (x,y) in par(zip(xs, ys)))."""
        rng = np.random.default_rng(1)
        xs, ys = rng.standard_normal(500), rng.standard_normal(500)
        with triolet_runtime(MACHINE):
            out = tri.sum(tri.map(lambda p: p[0] * p[1], tri.par(tri.zip(xs, ys))))
        assert out == pytest.approx(float(xs @ ys))

    def test_par_sum_of_filter(self):
        xs = np.arange(200.0) - 100.0
        with triolet_runtime(MACHINE):
            out = tri.sum(tri.filter(pos, tri.par(xs)))
        assert out == pytest.approx(sum(x for x in xs if x > 0))

    def test_par_histogram(self):
        bins = np.arange(300) % 7
        with triolet_runtime(MACHINE):
            h = tri.histogram(7, tri.par(bins))
        np.testing.assert_array_equal(h, np.bincount(bins, minlength=7))

    def test_par_build_1d(self):
        xs = np.arange(100.0)
        with triolet_runtime(MACHINE):
            out = tri.build(tri.map(sq, tri.par(xs)))
        np.testing.assert_allclose(out, xs**2)

    def test_par_build_2d_outer_product(self):
        """The two-line sgemm decomposition distributed on the cluster."""
        rng = np.random.default_rng(2)
        A = rng.standard_normal((16, 8))
        B = rng.standard_normal((8, 12))
        BT = np.ascontiguousarray(B.T)
        with triolet_runtime(MACHINE) as rt:
            zipped = tri.outerproduct(tri.rows(A), tri.rows(BT))
            AB = tri.build(tri.map(lambda uv: float(uv[0] @ uv[1]), tri.par(zipped)))
        np.testing.assert_allclose(AB, A @ B, rtol=1e-10)
        assert rt.last_section.partition.startswith("2d")

    def test_localpar_sum(self):
        xs = np.arange(128.0)
        with triolet_runtime(MACHINE) as rt:
            out = tri.sum(tri.localpar(xs))
        assert out == pytest.approx(np.sum(xs))
        assert rt.last_section.nodes == 1
        assert rt.last_section.hint == "localpar"

    def test_nested_localpar_inside_par(self):
        """tpacf's shape: par over datasets, localpar within each."""
        rng = np.random.default_rng(3)
        datasets = rng.standard_normal((8, 50))

        def per_set(row):
            return tri.sum(tri.map(sq, tri.localpar(row)))

        with triolet_runtime(MACHINE):
            out = tri.sum(tri.map(per_set, tri.par(datasets)))
        assert out == pytest.approx(float(np.sum(datasets**2)))

    def test_more_data_than_one_element_per_node(self):
        xs = np.arange(7.0)  # fewer elements than cores, more than nodes?
        with triolet_runtime(MACHINE):
            assert tri.sum(tri.par(xs)) == pytest.approx(21.0)

    def test_single_element(self):
        with triolet_runtime(MACHINE):
            assert tri.sum(tri.par(np.array([5.0]))) == pytest.approx(5.0)

    def test_empty_input(self):
        with triolet_runtime(MACHINE):
            assert tri.sum(tri.par(np.array([]))) == pytest.approx(0.0)

    def test_unpartitionable_par_falls_back_sequential(self):
        # A StepFlat (variable-length) loop marked par still computes.
        stepper = tri.zip(tri.filter(pos, np.arange(5.0)), np.arange(5.0))
        assert stepper.constructor == "StepFlat"
        with triolet_runtime(MACHINE) as rt:
            out = tri.count(stepper.with_hint(tri.ParHint.PAR))
        assert out == 4
        assert rt.last_section.label == "par-unpartitionable"


class TestVirtualTiming:
    def test_section_recorded_with_makespan(self):
        xs = np.arange(1000.0)
        with triolet_runtime(MACHINE) as rt:
            tri.sum(tri.par(xs))
        s = rt.last_section
        assert s.makespan > 0
        assert s.nodes == 4
        assert rt.elapsed >= s.makespan

    def test_parallel_faster_than_sequential_model(self):
        """With compute-heavy costs, 4 nodes beat 1 node in virtual time."""
        xs = np.arange(4000.0)
        costs = CostContext(unit_time=1e-5)
        with triolet_runtime(MACHINE, costs=costs, alloc=FREE_ALLOC) as rt4:
            tri.sum(tri.par(xs))
        t4 = rt4.elapsed
        small = MachineSpec(nodes=1, cores_per_node=1, net=MACHINE.net, shm=MACHINE.shm)
        with triolet_runtime(small, costs=costs, alloc=FREE_ALLOC) as rt1:
            tri.sum(tri.par(xs))
        t1 = rt1.elapsed
        assert t4 < t1 / 3  # near-linear on compute-bound work

    def test_comm_bound_loop_does_not_scale(self):
        """Tiny per-element work: shipping dominates; speedup saturates."""
        xs = np.arange(20_000.0)
        costs = CostContext(unit_time=1e-10)  # nearly free compute
        with triolet_runtime(MACHINE, costs=costs) as rt4:
            tri.sum(tri.par(xs))
        small = MachineSpec(nodes=1, cores_per_node=4, net=MACHINE.net, shm=MACHINE.shm)
        with triolet_runtime(small, costs=costs) as rt1:
            tri.sum(tri.par(xs))
        # 4 nodes can't be 4x faster when time is all communication.
        assert rt4.elapsed > rt1.elapsed / 2

    def test_bytes_shipped_scale_with_slice_size(self):
        with triolet_runtime(MACHINE) as rt_small:
            tri.sum(tri.par(np.arange(1000.0)))
        with triolet_runtime(MACHINE) as rt_big:
            tri.sum(tri.par(np.arange(10_000.0)))
        assert (
            rt_big.last_section.bytes_shipped
            > 5 * rt_small.last_section.bytes_shipped
        )

    def test_determinism(self):
        xs = np.arange(3000.0)
        times = []
        for _ in range(2):
            with triolet_runtime(MACHINE) as rt:
                tri.sum(tri.par(xs))
            times.append(rt.elapsed)
        assert times[0] == times[1]

    def test_gc_model_changes_time_not_result(self):
        xs = np.arange(5000.0)
        with triolet_runtime(MACHINE, alloc=BOEHM_GC) as rt_gc:
            r1 = tri.sum(tri.par(xs))
        with triolet_runtime(MACHINE, alloc=LIBC_MALLOC) as rt_malloc:
            r2 = tri.sum(tri.par(xs))
        assert r1 == r2
        assert rt_gc.total_gc_time() > rt_malloc.total_gc_time()

    def test_wire_scale_inflates_comm_time(self):
        xs = np.arange(5000.0)
        with triolet_runtime(MACHINE, costs=CostContext(wire_scale=1.0)) as rt1:
            tri.sum(tri.par(xs))
        with triolet_runtime(MACHINE, costs=CostContext(wire_scale=100.0)) as rt2:
            tri.sum(tri.par(xs))
        assert rt2.elapsed > rt1.elapsed

    def test_buffer_limit_enforced_on_scaled_bytes(self):
        # Without a recovery policy the byte cap is fatal, as in the seed.
        xs = np.arange(10_000.0)  # 80 kB raw; 8 MB at wire_scale=100
        limits = RuntimeLimits(max_message_bytes=1_000_000)
        with triolet_runtime(
            MACHINE,
            costs=CostContext(wire_scale=100.0),
            limits=limits,
            recovery=None,
        ):
            with pytest.raises(BufferOverflowError):
                tri.sum(tri.par(xs))

    def test_buffer_limit_fragments_under_default_recovery(self):
        # The default policy degrades gracefully: the oversized message is
        # fragmented into limit-sized pieces and the run completes.
        xs = np.arange(10_000.0)
        limits = RuntimeLimits(max_message_bytes=1_000_000)
        with triolet_runtime(
            MACHINE, costs=CostContext(wire_scale=100.0), limits=limits
        ) as rt:
            out = tri.sum(tri.par(xs))
        assert out == pytest.approx(np.sum(xs))
        report = rt.recovery_report
        assert report.rejected_messages >= 1
        assert report.fragments_sent > report.fragmented_messages >= 1

    def test_run_sequential_charges_clock(self):
        with triolet_runtime(MACHINE, costs=CostContext(unit_time=1e-3)) as rt:
            out = rt.run_sequential(lambda: tri.sum(np.arange(100.0)))
        assert out == pytest.approx(4950.0)
        assert rt.elapsed == pytest.approx(100 * 1e-3)
