"""The fault-tolerant Triolet runtime: retry, re-execution, degradation."""
import numpy as np
import pytest

import repro.triolet as tri
from repro.cluster import (
    BufferOverflowError,
    FaultPlan,
    MachineSpec,
    RankCrash,
    RankFailure,
    SendFault,
    SlowNode,
    TransientSendError,
)
from repro.cluster.limits import EDEN_LIMITS
from repro.runtime import (
    DEFAULT_RECOVERY,
    CostContext,
    RecoveryPolicy,
    RecoveryReport,
    triolet_runtime,
)

MACHINE = MachineSpec(nodes=4, cores_per_node=4)
XS = np.arange(2000.0)
EXPECTED = float(np.sum(XS * XS))


def squares_sum():
    return tri.sum(tri.map(lambda x: x * x, tri.par(XS)))


class TestRetry:
    def test_transient_send_fault_is_retried(self):
        plan = FaultPlan(faults=(SendFault(src=1, times=2),))
        with triolet_runtime(MACHINE, faults=plan) as rt:
            out = squares_sum()
        assert out == pytest.approx(EXPECTED)
        report = rt.recovery_report
        assert report.retries == 2
        assert report.backoff_time > 0.0
        assert report.faults.get("send") == 2

    def test_exhausted_retries_propagate(self):
        # more consecutive failures than the policy's retry budget
        plan = FaultPlan(faults=(SendFault(src=1, times=99),))
        policy = RecoveryPolicy(max_retries=3)
        with triolet_runtime(MACHINE, faults=plan, recovery=policy):
            with pytest.raises(TransientSendError):
                squares_sum()

    def test_retry_makespan_is_deterministic(self):
        elapsed = []
        for _ in range(2):
            plan = FaultPlan(faults=(SendFault(src=1, times=2),))
            with triolet_runtime(MACHINE, faults=plan) as rt:
                squares_sum()
            elapsed.append(rt.elapsed)
        assert elapsed[0] == elapsed[1]


class TestReexecution:
    def test_crashed_rank_work_is_redistributed(self):
        with triolet_runtime(MACHINE) as rt:
            baseline = squares_sum()
            clean_elapsed = rt.elapsed
        plan = FaultPlan(faults=(RankCrash(rank=1, at=1e-6),))
        with triolet_runtime(MACHINE, faults=plan) as rt:
            out = squares_sum()
        assert out == baseline == pytest.approx(EXPECTED)
        report = rt.recovery_report
        assert report.faults.get("crash") == 1
        assert report.attempts == 2
        assert report.reexecuted_chunks >= 1
        assert report.added_time > 0.0
        assert rt.elapsed > clean_elapsed

    def test_section_record_carries_recovery(self):
        plan = FaultPlan(faults=(RankCrash(rank=1, at=1e-6),))
        with triolet_runtime(MACHINE, faults=plan) as rt:
            squares_sum()
        rec = rt.last_section.recovery
        assert rec is not None
        assert rec.faults.get("crash") == 1

    def test_crash_without_recovery_propagates(self):
        plan = FaultPlan(faults=(RankCrash(rank=1, at=1e-6),))
        with triolet_runtime(MACHINE, faults=plan, recovery=None):
            with pytest.raises(RankFailure) as exc_info:
                squares_sum()
        infos = exc_info.value.rank_failures
        assert [i.rank for i in infos] == [1]

    def test_reexecution_budget_exhausted_propagates(self):
        # every attempt crashes another rank: budget of 1 is not enough
        plan = FaultPlan(
            faults=(
                RankCrash(rank=1, at=1e-6),
                RankCrash(rank=2, at=1e-6),
                RankCrash(rank=3, at=1e-6),
            )
        )
        policy = RecoveryPolicy(max_reexecutions=1)
        with triolet_runtime(MACHINE, faults=plan, recovery=policy):
            with pytest.raises(RankFailure):
                squares_sum()

    def test_reexecution_is_deterministic(self):
        outs, times = [], []
        for _ in range(2):
            plan = FaultPlan(faults=(RankCrash(rank=2, at=1e-6),))
            with triolet_runtime(MACHINE, faults=plan) as rt:
                outs.append(squares_sum())
            times.append(rt.elapsed)
        assert outs[0] == outs[1]
        assert times[0] == times[1]


class TestSpeculation:
    def test_straggler_capped_by_task_timeout(self):
        plan = FaultPlan(faults=(SlowNode(node=1, factor=50.0),))
        capped = RecoveryPolicy(task_timeout=1e-4)
        with triolet_runtime(MACHINE, faults=plan, recovery=capped) as rt:
            out = squares_sum()
        assert out == pytest.approx(EXPECTED)
        assert rt.recovery_report.speculations > 0

        plan = FaultPlan(faults=(SlowNode(node=1, factor=50.0),))
        uncapped = RecoveryPolicy(task_timeout=None)
        with triolet_runtime(MACHINE, faults=plan, recovery=uncapped) as rt2:
            out2 = squares_sum()
        assert out2 == pytest.approx(EXPECTED)
        assert rt2.elapsed > rt.elapsed


class TestGracefulDegradation:
    def test_sgemm_completes_under_eden_limits(self):
        """The Fig. 5 asymmetry: under Eden's 64 MB message cap at >= 2
        nodes, Eden still fails while Triolet fragments and completes."""
        from repro.apps import sgemm
        from repro.bench.calibrate import costs_for
        from repro.bench.harness import APPS, make_problem
        from repro.cluster.machine import PAPER_MACHINE

        p = make_problem("sgemm")
        machine = PAPER_MACHINE.scaled(nodes=2, cores_per_node=16)

        eden_run = sgemm.run_eden(p, machine, costs_for("sgemm", "eden", p))
        assert not eden_run.ok
        assert "buffer" in eden_run.failed

        costs = costs_for("sgemm", "triolet", p)
        tri_run = sgemm.run_triolet(p, machine, costs, limits=EDEN_LIMITS)
        assert tri_run.ok
        assert APPS["sgemm"].same_value(
            tri_run.value, APPS["sgemm"].solve_ref(p)
        )
        report = tri_run.detail["recovery"]
        assert report.rejected_messages >= 1
        assert report.fragments_sent >= 2

    def test_triolet_without_recovery_matches_eden_fate(self):
        from repro.apps import sgemm
        from repro.bench.calibrate import costs_for
        from repro.bench.harness import make_problem
        from repro.cluster.machine import PAPER_MACHINE

        p = make_problem("sgemm")
        machine = PAPER_MACHINE.scaled(nodes=2, cores_per_node=16)
        costs = costs_for("sgemm", "triolet", p)
        with pytest.raises(BufferOverflowError):
            sgemm.run_triolet(
                p, machine, costs, limits=EDEN_LIMITS, recovery=None
            )


class TestZeroCost:
    def test_default_policy_does_not_change_fault_free_timeline(self):
        with triolet_runtime(MACHINE, recovery=None) as rt_off:
            out_off = squares_sum()
        with triolet_runtime(MACHINE, recovery=DEFAULT_RECOVERY) as rt_on:
            out_on = squares_sum()
        assert out_off == out_on
        assert rt_off.elapsed == rt_on.elapsed
        assert rt_on.recovery_report.total_faults == 0
        assert rt_on.recovery_report.added_time == 0.0

    def test_installed_empty_plan_reports_all_zero(self):
        with triolet_runtime(MACHINE, faults=FaultPlan()) as rt:
            squares_sum()
        report = rt.recovery_report
        assert report.total_faults == 0
        assert report.retries == 0
        assert report.reexecuted_chunks == 0


class TestRecoveryReport:
    def test_merge_accumulates(self):
        acc = RecoveryReport(attempts=0)
        acc.merge(RecoveryReport(faults={"send": 1}, retries=1, attempts=1))
        acc.merge(RecoveryReport(faults={"send": 2, "crash": 1}, attempts=2))
        assert acc.faults == {"send": 3, "crash": 1}
        assert acc.retries == 1
        assert acc.attempts == 3
        assert acc.total_faults == 4

    def test_describe_mentions_every_mechanism(self):
        text = RecoveryReport(
            faults={"crash": 1}, retries=2, reexecuted_chunks=3
        ).describe()
        for needle in ("crash=1", "retries: 2", "re-executed chunks: 3"):
            assert needle in text
