"""The fault-tolerant Triolet runtime: retry, re-execution, degradation."""
from dataclasses import fields as dc_fields

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.triolet as tri
from repro.cluster import (
    BufferOverflowError,
    FaultPlan,
    MachineSpec,
    RankCrash,
    RankFailure,
    RankLoss,
    SendFault,
    SlowNode,
    TransientSendError,
)
from repro.cluster.limits import EDEN_LIMITS
from repro.runtime import (
    DEFAULT_RECOVERY,
    BudgetExhausted,
    CostContext,
    FailureBudget,
    PermanentFault,
    RecoveryPolicy,
    RecoveryReport,
    classify_failure,
    triolet_runtime,
)

MACHINE = MachineSpec(nodes=4, cores_per_node=4)
XS = np.arange(2000.0)
EXPECTED = float(np.sum(XS * XS))


def squares_sum():
    return tri.sum(tri.map(lambda x: x * x, tri.par(XS)))


class TestRetry:
    def test_transient_send_fault_is_retried(self):
        plan = FaultPlan(faults=(SendFault(src=1, times=2),))
        with triolet_runtime(MACHINE, faults=plan) as rt:
            out = squares_sum()
        assert out == pytest.approx(EXPECTED)
        report = rt.recovery_report
        assert report.retries == 2
        assert report.backoff_time > 0.0
        assert report.faults.get("send") == 2

    def test_exhausted_retries_propagate(self):
        # more consecutive failures than the policy's retry budget
        plan = FaultPlan(faults=(SendFault(src=1, times=99),))
        policy = RecoveryPolicy(max_retries=3)
        with triolet_runtime(MACHINE, faults=plan, recovery=policy):
            with pytest.raises(TransientSendError):
                squares_sum()

    def test_retry_makespan_is_deterministic(self):
        elapsed = []
        for _ in range(2):
            plan = FaultPlan(faults=(SendFault(src=1, times=2),))
            with triolet_runtime(MACHINE, faults=plan) as rt:
                squares_sum()
            elapsed.append(rt.elapsed)
        assert elapsed[0] == elapsed[1]


class TestReexecution:
    def test_crashed_rank_work_is_redistributed(self):
        with triolet_runtime(MACHINE) as rt:
            baseline = squares_sum()
            clean_elapsed = rt.elapsed
        plan = FaultPlan(faults=(RankCrash(rank=1, at=1e-6),))
        with triolet_runtime(MACHINE, faults=plan) as rt:
            out = squares_sum()
        assert out == baseline == pytest.approx(EXPECTED)
        report = rt.recovery_report
        assert report.faults.get("crash") == 1
        assert report.attempts == 2
        assert report.reexecuted_chunks >= 1
        assert report.added_time > 0.0
        assert rt.elapsed > clean_elapsed

    def test_section_record_carries_recovery(self):
        plan = FaultPlan(faults=(RankCrash(rank=1, at=1e-6),))
        with triolet_runtime(MACHINE, faults=plan) as rt:
            squares_sum()
        rec = rt.last_section.recovery
        assert rec is not None
        assert rec.faults.get("crash") == 1

    def test_crash_without_recovery_propagates(self):
        plan = FaultPlan(faults=(RankCrash(rank=1, at=1e-6),))
        with triolet_runtime(MACHINE, faults=plan, recovery=None):
            with pytest.raises(RankFailure) as exc_info:
                squares_sum()
        infos = exc_info.value.rank_failures
        assert [i.rank for i in infos] == [1]

    def test_reexecution_budget_exhausted_propagates(self):
        # every attempt crashes the current rank 1 (a different physical
        # rank after each re-partition): budget of 1 is not enough
        plan = FaultPlan(
            faults=(
                RankCrash(rank=1, at=1e-6),
                RankCrash(rank=1, at=1e-6),
                RankCrash(rank=1, at=1e-6),
            )
        )
        policy = RecoveryPolicy(max_reexecutions=1)
        with triolet_runtime(MACHINE, faults=plan, recovery=policy):
            with pytest.raises(RankFailure):
                squares_sum()

    def test_reexecution_is_deterministic(self):
        outs, times = [], []
        for _ in range(2):
            plan = FaultPlan(faults=(RankCrash(rank=2, at=1e-6),))
            with triolet_runtime(MACHINE, faults=plan) as rt:
                outs.append(squares_sum())
            times.append(rt.elapsed)
        assert outs[0] == outs[1]
        assert times[0] == times[1]


class TestSpeculation:
    def test_straggler_capped_by_task_timeout(self):
        plan = FaultPlan(faults=(SlowNode(node=1, factor=50.0),))
        capped = RecoveryPolicy(task_timeout=1e-4)
        with triolet_runtime(MACHINE, faults=plan, recovery=capped) as rt:
            out = squares_sum()
        assert out == pytest.approx(EXPECTED)
        assert rt.recovery_report.speculations > 0

        plan = FaultPlan(faults=(SlowNode(node=1, factor=50.0),))
        uncapped = RecoveryPolicy(task_timeout=None)
        with triolet_runtime(MACHINE, faults=plan, recovery=uncapped) as rt2:
            out2 = squares_sum()
        assert out2 == pytest.approx(EXPECTED)
        assert rt2.elapsed > rt.elapsed


class TestGracefulDegradation:
    def test_sgemm_completes_under_eden_limits(self):
        """The Fig. 5 asymmetry: under Eden's 64 MB message cap at >= 2
        nodes, Eden still fails while Triolet fragments and completes."""
        from repro.apps import sgemm
        from repro.bench.calibrate import costs_for
        from repro.bench.harness import APPS, make_problem
        from repro.cluster.machine import PAPER_MACHINE

        p = make_problem("sgemm")
        machine = PAPER_MACHINE.scaled(nodes=2, cores_per_node=16)

        eden_run = sgemm.run_eden(p, machine, costs_for("sgemm", "eden", p))
        assert not eden_run.ok
        assert "buffer" in eden_run.failed

        costs = costs_for("sgemm", "triolet", p)
        tri_run = sgemm.run_triolet(p, machine, costs, limits=EDEN_LIMITS)
        assert tri_run.ok
        assert APPS["sgemm"].same_value(
            tri_run.value, APPS["sgemm"].solve_ref(p)
        )
        report = tri_run.detail["recovery"]
        assert report.rejected_messages >= 1
        assert report.fragments_sent >= 2

    def test_triolet_without_recovery_matches_eden_fate(self):
        from repro.apps import sgemm
        from repro.bench.calibrate import costs_for
        from repro.bench.harness import make_problem
        from repro.cluster.machine import PAPER_MACHINE

        p = make_problem("sgemm")
        machine = PAPER_MACHINE.scaled(nodes=2, cores_per_node=16)
        costs = costs_for("sgemm", "triolet", p)
        with pytest.raises(BufferOverflowError):
            sgemm.run_triolet(
                p, machine, costs, limits=EDEN_LIMITS, recovery=None
            )


class TestZeroCost:
    def test_default_policy_does_not_change_fault_free_timeline(self):
        with triolet_runtime(MACHINE, recovery=None) as rt_off:
            out_off = squares_sum()
        with triolet_runtime(MACHINE, recovery=DEFAULT_RECOVERY) as rt_on:
            out_on = squares_sum()
        assert out_off == out_on
        assert rt_off.elapsed == rt_on.elapsed
        assert rt_on.recovery_report.total_faults == 0
        assert rt_on.recovery_report.added_time == 0.0

    def test_installed_empty_plan_reports_all_zero(self):
        with triolet_runtime(MACHINE, faults=FaultPlan()) as rt:
            squares_sum()
        report = rt.recovery_report
        assert report.total_faults == 0
        assert report.retries == 0
        assert report.reexecuted_chunks == 0


class TestRecoveryReport:
    def test_merge_accumulates(self):
        acc = RecoveryReport(attempts=0)
        acc.merge(RecoveryReport(faults={"send": 1}, retries=1, attempts=1))
        acc.merge(RecoveryReport(faults={"send": 2, "crash": 1}, attempts=2))
        assert acc.faults == {"send": 3, "crash": 1}
        assert acc.retries == 1
        assert acc.attempts == 3
        assert acc.total_faults == 4

    def test_describe_mentions_every_mechanism(self):
        text = RecoveryReport(
            faults={"crash": 1}, retries=2, reexecuted_chunks=3
        ).describe()
        for needle in ("crash=1", "retries: 2", "re-executed chunks: 3"):
            assert needle in text


# -- durable recovery (lineage, shrink, budgets, taxonomy) -------------------

_NUMERIC_FIELDS = [
    f for f in dc_fields(RecoveryReport) if f.name not in ("faults", "failure")
]


@st.composite
def _reports(draw):
    """A random RecoveryReport, field-generic so a counter added later is
    exercised automatically.  Float fields draw dyadic rationals (k/8) so
    sums are exact and regrouping cannot introduce rounding."""
    kwargs = {
        "faults": draw(
            st.dictionaries(
                st.sampled_from(["send", "crash", "loss", "delay"]),
                st.integers(0, 5),
                max_size=3,
            )
        ),
        "failure": draw(
            st.sampled_from([None, "transient", "permanent", "budget"])
        ),
    }
    for f in _NUMERIC_FIELDS:
        if isinstance(f.default, float):
            kwargs[f.name] = draw(st.integers(0, 64)) / 8.0
        else:
            kwargs[f.name] = draw(st.integers(0, 100))
    return RecoveryReport(**kwargs)


def _fold(reports):
    acc = RecoveryReport(attempts=0)
    for r in reports:
        acc.merge(r)
    return acc


@pytest.mark.recovery
class TestMergeRoundTrip:
    """Satellite: a merge of per-run reports must equal the report over
    the concatenated runs, for *every* dataclass field -- the regression
    that motivated the field-generic merge was a hand-enumerated counter
    list silently dropping newly added fields."""

    @given(st.lists(_reports(), min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_concatenated_totals(self, reports):
        acc = _fold(reports)
        for f in _NUMERIC_FIELDS:
            assert getattr(acc, f.name) == sum(
                getattr(r, f.name) for r in reports
            ), f"field {f.name} dropped or mis-merged"
        for kind in {k for r in reports for k in r.faults}:
            assert acc.faults[kind] == sum(
                r.faults.get(kind, 0) for r in reports
            )
        last = [r.failure for r in reports if r.failure is not None]
        assert acc.failure == (last[-1] if last else None)

    @given(st.lists(_reports(), min_size=2, max_size=6),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_merge_regrouping_is_invariant(self, reports, cut):
        """Merging run-by-run equals merging pre-merged halves (the
        driver folds section reports; callers fold runtime reports)."""
        cut = min(cut, len(reports) - 1)
        flat = _fold(reports)
        halves = _fold([_fold(reports[:cut]), _fold(reports[cut:])])
        for f in _NUMERIC_FIELDS:
            assert getattr(flat, f.name) == getattr(halves, f.name)
        assert flat.faults == halves.faults
        assert flat.failure == halves.failure


@pytest.mark.recovery
class TestBackoffProperties:
    """Satellite: retry backoff is capped, monotone, and a pure function
    of (policy, attempt) -- no hidden randomness."""

    @given(base=st.floats(1e-6, 1e-2, allow_nan=False),
           cap=st.floats(1e-6, 1e-1, allow_nan=False),
           attempt=st.integers(0, 60))
    @settings(max_examples=100, deadline=None)
    def test_backoff_capped_monotone_deterministic(self, base, cap, attempt):
        policy = RecoveryPolicy(backoff_base=base, backoff_cap=cap)
        b = policy.backoff(attempt)
        assert 0.0 < b <= cap  # never above the ceiling
        assert b == policy.backoff(attempt)  # pure
        assert policy.backoff(attempt + 1) >= b  # monotone in attempt
        twin = RecoveryPolicy(backoff_base=base, backoff_cap=cap)
        assert twin.backoff(attempt) == b  # deterministic across instances

    def test_runtime_backoff_matches_policy_schedule(self):
        """The virtual time charged for retries is exactly the policy's
        capped-exponential schedule -- same seed, same timeline."""
        policy = RecoveryPolicy(max_retries=4)
        plan = FaultPlan(faults=(SendFault(src=1, times=3),))
        with triolet_runtime(MACHINE, faults=plan, recovery=policy) as rt:
            squares_sum()
        rep = rt.recovery_report
        assert rep.retries == 3
        assert rep.backoff_time == sum(policy.backoff(i) for i in range(3))


@pytest.mark.recovery
class TestElasticShrink:
    def _loss(self, section=None):
        return FaultPlan(faults=(RankLoss(rank=1, at=1e-6, section=section),))

    def test_permanent_loss_completes_degraded_and_identical(self):
        with triolet_runtime(MACHINE) as rt0:
            baseline = squares_sum()
        with triolet_runtime(MACHINE, faults=self._loss()) as rt:
            out = squares_sum()
        assert out == baseline  # bit-identical scalar
        rep = rt.recovery_report
        assert rep.rank_losses == 1
        assert rep.faults.get("crash") == 1
        assert rt.lost_ranks == 1
        assert rep.failure is None

    def test_later_sections_run_on_the_survivors(self):
        with triolet_runtime(MACHINE, faults=self._loss()) as rt:
            first = squares_sum()
            second = squares_sum()
        assert first == second == pytest.approx(EXPECTED)
        # The machine did not heal: the first section re-executed on the
        # survivors (two attempts) and the next section never saw the
        # lost rank at all (one attempt, same reduced width).
        assert rt.sections[0].recovery.attempts == 2
        assert rt.sections[1].recovery is None or \
            rt.sections[1].recovery.attempts <= 1
        assert rt.sections[0].nodes == rt.sections[1].nodes == \
            MACHINE.nodes - 1

    def test_concurrent_losses_absorb_in_one_attempt_deterministically(self):
        # Two losses due within the same attempt: the survivors must keep
        # executing their own instruction streams after the first failure
        # (draining posted messages, applying shipping ops), so the
        # second loss always fires alongside the first and the recovery
        # accounting is a pure function of the plan -- never of how fast
        # the abort flag propagated between rank threads.
        runs = []
        for _ in range(3):
            plan = FaultPlan(
                faults=(RankLoss(rank=1, at=1e-6),
                        RankLoss(rank=2, at=1e-6))
            )
            with triolet_runtime(MACHINE, faults=plan) as rt:
                out = squares_sum()
            rep = rt.recovery_report
            runs.append((out, rep.rank_losses, rep.attempts,
                         rep.reshipped_bytes, rt.elapsed))
        assert len(set(runs)) == 1
        out, losses, attempts, _, _ = runs[0]
        assert out == pytest.approx(EXPECTED)
        assert losses == 2
        assert attempts == 2  # one failed attempt absorbed both losses

    def test_loss_without_recovery_raises_permanent_fault(self):
        with triolet_runtime(MACHINE, faults=self._loss(),
                             recovery=None) as rt:
            with pytest.raises(PermanentFault) as exc_info:
                squares_sum()
        assert classify_failure(exc_info.value) == "permanent"
        assert rt.recovery_report.failure == "permanent"

    def test_loss_with_reexecution_budget_zero_is_permanent_fault(self):
        policy = RecoveryPolicy(max_reexecutions=0)
        with triolet_runtime(MACHINE, faults=self._loss(),
                             recovery=policy) as rt:
            with pytest.raises(PermanentFault):
                squares_sum()
        assert rt.recovery_report.failure == "permanent"


@pytest.mark.recovery
class TestFailureBudgets:
    def _loss(self):
        return FaultPlan(faults=(RankLoss(rank=1, at=1e-6),))

    def test_rank_loss_budget_exhaustion(self):
        budget = FailureBudget(max_rank_losses=0)
        with triolet_runtime(MACHINE, faults=self._loss(),
                             budget=budget) as rt:
            with pytest.raises(BudgetExhausted):
                squares_sum()
        assert rt.recovery_report.failure == "budget"
        assert budget.rank_losses_used == 1

    def test_reexecution_budget_spans_sections(self):
        # Two transient crashes in different sections: each alone is
        # recoverable, but a job-wide budget of 1 dies on the second.
        plan = FaultPlan(
            faults=(RankCrash(rank=1, at=1e-6, section=0),
                    RankCrash(rank=2, at=1e-6, section=1))
        )
        budget = FailureBudget(max_reexecutions=1)
        with triolet_runtime(MACHINE, faults=plan, budget=budget) as rt:
            squares_sum()
            with pytest.raises(BudgetExhausted):
                squares_sum()
        assert rt.recovery_report.failure == "budget"
        assert budget.reexecutions_used == 2

    def test_deadline_kills_a_healthy_job(self):
        budget = FailureBudget(deadline=1e-12)
        with triolet_runtime(MACHINE, budget=budget) as rt:
            with pytest.raises(BudgetExhausted):
                squares_sum()
        assert rt.recovery_report.failure == "budget"

    def test_unlimited_budget_never_fires(self):
        budget = FailureBudget()
        with triolet_runtime(MACHINE, faults=self._loss(),
                             budget=budget) as rt:
            out = squares_sum()
        assert out == pytest.approx(EXPECTED)
        assert rt.recovery_report.failure is None


@pytest.mark.recovery
class TestTaxonomy:
    def test_classify_walks_the_cause_chain(self):
        try:
            try:
                raise TransientSendError(1, 0, 7, 3)
            except TransientSendError as inner:
                raise RuntimeError("wrapped") from inner
        except RuntimeError as exc:
            assert classify_failure(exc) == "transient"

    def test_classify_permanent_rank_failure(self):
        assert classify_failure(
            RankFailure(1, 1e-6, 2e-6, permanent=True)
        ) == "permanent"
        assert classify_failure(RankFailure(1, 1e-6, 2e-6)) == "transient"

    def test_classify_budget_and_unknown(self):
        assert classify_failure(BudgetExhausted("x")) == "budget"
        assert classify_failure(ValueError("x")) == "unknown"

    def test_exhausted_retries_classify_transient(self):
        plan = FaultPlan(faults=(SendFault(src=1, times=99),))
        policy = RecoveryPolicy(max_retries=2)
        with triolet_runtime(MACHINE, faults=plan, recovery=policy) as rt:
            with pytest.raises(TransientSendError):
                squares_sum()
        assert rt.recovery_report.failure == "transient"
