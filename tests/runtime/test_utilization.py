"""Tests for section utilization accounting and the cost-context hook."""
import numpy as np
import pytest

import repro.triolet as tri
from repro.apps.cutcp import make_problem
from repro.bench.calibrate import costs_for
from repro.cluster.machine import MachineSpec
from repro.runtime import CostContext, triolet_runtime, use_costs, current_costs

MACHINE = MachineSpec(nodes=4, cores_per_node=4)


class TestUtilization:
    def test_compute_bound_section_is_highly_utilized(self):
        xs = np.arange(8000.0)
        with triolet_runtime(MACHINE, costs=CostContext(unit_time=1e-5)) as rt:
            tri.sum(tri.par(xs))
        assert rt.last_section.utilization() > 0.8

    def test_comm_bound_section_is_poorly_utilized(self):
        xs = np.arange(8000.0)
        with triolet_runtime(MACHINE, costs=CostContext(unit_time=1e-12)) as rt:
            tri.sum(tri.par(xs))
        assert rt.last_section.utilization() < 0.5

    def test_cutcp_utilization_falls_with_scale(self):
        """Fig. 8's saturation, seen through the utilization lens."""
        from repro.apps.cutcp.triolet import _contrib
        from repro.serial import closure

        p = make_problem(na=200, grid=(20, 20, 20), cutoff=4.0, seed=9)
        costs = costs_for("cutcp", "triolet", p)
        utils = []
        for nodes in (1, 8):
            with triolet_runtime(
                MachineSpec(nodes=nodes, cores_per_node=16), costs=costs
            ) as rt:
                contrib = closure(_contrib, list(p.grid_dim), p.spacing, p.cutoff)
                tri.histogram(p.grid_size, tri.map(contrib, tri.par(p.atoms)))
            utils.append(rt.last_section.utilization())
        assert utils[1] < utils[0]

    def test_sequential_section_has_no_utilization(self):
        with triolet_runtime(MACHINE) as rt:
            rt.run_sequential(lambda: 1)
        with pytest.raises(ValueError):
            rt.last_section.utilization()


class TestCostContextHook:
    def test_current_costs_default(self):
        assert current_costs().unit_time > 0

    def test_use_costs_scopes(self):
        custom = CostContext(unit_time=123.0)
        with use_costs(custom):
            assert current_costs() is custom
        assert current_costs() is not custom

    def test_runtime_installs_its_costs(self):
        custom = CostContext(unit_time=77.0)
        with triolet_runtime(MACHINE, costs=custom):
            assert current_costs() is custom
