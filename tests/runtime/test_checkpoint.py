"""Section checkpointing and restart-from-last-checkpoint.

The store is simulated durable (plain driver-side state outside the
machine); what the tests pin down is the contract: admission is policy-
driven, blobs round-trip through the real wire format (bit-identical by
construction, fresh objects on fetch), durable I/O is charged to the
virtual clock, and a restarted job re-runs only the uncheckpointed tail.
"""
import numpy as np
import pytest

import repro.triolet as tri
from repro.cluster import FaultPlan, MachineSpec, RankFailure, RankLoss
from repro.runtime import (
    CheckpointConfig,
    CheckpointPolicy,
    CheckpointStore,
    run_restartable,
    triolet_runtime,
)
from repro.testing.kernels import k_double, k_square

pytestmark = pytest.mark.recovery

MACHINE = MachineSpec(nodes=4, cores_per_node=2)
XS = np.arange(2048.0)


def _job(rt):
    h = rt.distribute(XS)
    a = tri.sum(tri.map(k_square, tri.par(h)))
    b = tri.sum(tri.map(k_double, tri.par(h)))
    return a, b


class TestPolicy:
    def test_every_n_gates_admission(self):
        p = CheckpointPolicy(every=2)
        assert p.should(0, 100) and p.should(2, 100)
        assert not p.should(1, 100) and not p.should(3, 100)

    def test_min_bytes_gates_admission(self):
        p = CheckpointPolicy(min_bytes=64)
        assert not p.should(0, 63)
        assert p.should(0, 64)

    def test_io_cost_is_latency_plus_parallel_bytes(self):
        p = CheckpointPolicy(bandwidth=1e6, latency=1e-3)
        assert p.write_seconds(1000, writers=1) == pytest.approx(2e-3)
        # Two writers stream their shares in parallel: byte term halves.
        assert p.write_seconds(1000, writers=2) == pytest.approx(1.5e-3)
        assert p.read_seconds(1000, readers=2) == pytest.approx(1.5e-3)


class TestStore:
    def test_round_trip_is_bit_identical_and_fresh(self):
        store = CheckpointStore()
        value = np.arange(17.0) * np.pi
        nbytes = store.maybe_put("job", 0, value, CheckpointPolicy())
        assert nbytes is not None and nbytes > 0
        got, blob_len = store.fetch("job", 0)
        assert blob_len == nbytes
        assert got.tobytes() == value.tobytes()
        assert got is not value  # a fresh object, never an alias
        again, _ = store.fetch("job", 0)
        assert again is not got

    def test_counters_and_last_seq(self):
        store = CheckpointStore()
        pol = CheckpointPolicy()
        store.maybe_put("job", 0, 1.5, pol)
        store.maybe_put("job", 3, 2.5, pol)
        store.maybe_put("other", 9, 3.5, pol)
        assert store.puts == 3 and len(store) == 3
        assert store.last_seq("job") == 3
        assert store.last_seq("other") == 9
        assert store.last_seq("missing") is None
        store.fetch("job", 0)
        assert store.fetches == 1 and store.bytes_read > 0
        assert store.drop_job("job") == 2
        assert store.last_seq("job") is None

    def test_unserializable_value_is_skipped_not_corrupted(self):
        store = CheckpointStore()
        assert store.maybe_put("job", 0, lambda x: x, CheckpointPolicy()) is None
        assert store.skipped == 1 and len(store) == 0
        assert store.fetch("job", 0) is None

    def test_policy_rejection_counts_as_skip(self):
        store = CheckpointStore()
        assert store.maybe_put("job", 1, 1.0, CheckpointPolicy(every=2)) is None
        assert store.skipped == 1


class TestRestart:
    def _loss_in_second_section(self):
        return FaultPlan(faults=(RankLoss(rank=1, at=1e-6, section=1),))

    def test_restart_restores_durable_sections_bit_identically(self):
        with triolet_runtime(MACHINE) as rt0:
            oracle = _job(rt0)

        store = CheckpointStore()
        plan = self._loss_in_second_section()

        def make_rt():
            return triolet_runtime(
                MACHINE, faults=plan, recovery=None,
                checkpoint=CheckpointConfig(store=store, job="t"),
            )

        value, rt, restarts = run_restartable(make_rt, _job)
        assert value == oracle  # bit-identical tuple of scalars
        assert restarts == 1
        rep = rt.recovery_report
        # The restarted run served section 0 from the durable store and
        # executed only the tail past the last checkpoint.
        assert rep.restores == 1 and rep.restored_bytes > 0
        assert rep.checkpoint_time > 0.0
        assert store.puts >= 2 and store.bytes_written > 0

    def test_restart_budget_zero_propagates(self):
        store = CheckpointStore()
        plan = self._loss_in_second_section()

        def make_rt():
            return triolet_runtime(
                MACHINE, faults=plan, recovery=None,
                checkpoint=CheckpointConfig(store=store, job="t"),
            )

        with pytest.raises((RankFailure, RuntimeError)):
            run_restartable(make_rt, _job, max_restarts=0)

    def test_checkpoint_write_cost_shows_on_the_clock(self):
        with triolet_runtime(MACHINE) as plain:
            _job(plain)
        with triolet_runtime(
            MACHINE,
            checkpoint=CheckpointConfig(store=CheckpointStore(), job="t"),
        ) as ck:
            _job(ck)
        # Durability is never free: the same job takes longer with
        # checkpoint writes charged to the virtual clock.
        assert ck.elapsed > plain.elapsed
        assert ck.recovery_report.checkpoints == 2
