"""Scheduler makespan-model tests."""
import pytest
from hypothesis import given, strategies as st

from repro.runtime import static_for_makespan, work_stealing_makespan

durs = st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), max_size=50)


class TestWorkStealing:
    def test_single_core_is_sum(self):
        assert work_stealing_makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_perfect_split(self):
        assert work_stealing_makespan([1.0] * 8, 4) == pytest.approx(2.0)

    def test_imbalanced_tasks_bounded_by_graham(self):
        tasks = [5.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        ms = work_stealing_makespan(tasks, 2)
        opt = 5.0
        assert opt <= ms <= 2 * opt

    def test_empty(self):
        assert work_stealing_makespan([], 4) == 0.0

    def test_steal_overhead_accumulates(self):
        a = work_stealing_makespan([1.0] * 16, 4, steal_overhead=0.0)
        b = work_stealing_makespan([1.0] * 16, 4, steal_overhead=0.1)
        assert b > a

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            work_stealing_makespan([1.0], 0)

    @given(durs, st.integers(1, 16))
    def test_bounds(self, tasks, cores):
        ms = work_stealing_makespan(tasks, cores)
        total = sum(tasks)
        longest = max(tasks, default=0.0)
        assert ms >= max(total / cores, longest) - 1e-9
        assert ms <= total + 1e-9

    @given(durs, st.integers(1, 16))
    def test_more_cores_never_slower(self, tasks, cores):
        a = work_stealing_makespan(tasks, cores)
        b = work_stealing_makespan(tasks, cores + 1)
        assert b <= a + 1e-9


class TestStaticFor:
    def test_balanced(self):
        assert static_for_makespan([1.0] * 8, 4) == pytest.approx(2.0)

    def test_imbalance_not_recovered(self):
        # One heavy task at the front: its whole block lands on core 0.
        tasks = [10.0, 1.0, 1.0, 1.0]
        static = static_for_makespan(tasks, 2)
        dynamic = work_stealing_makespan(tasks, 2)
        assert static >= dynamic

    def test_empty(self):
        assert static_for_makespan([], 4) == 0.0

    @given(durs, st.integers(1, 16))
    def test_both_schedulers_respect_lower_bound(self, tasks, cores):
        lower = max(sum(tasks) / cores, max(tasks, default=0.0))
        st_ms = static_for_makespan(tasks, cores)
        dy_ms = work_stealing_makespan(tasks, cores)
        assert st_ms >= lower - 1e-9
        assert dy_ms >= lower - 1e-9
        # Graham's bound for greedy list scheduling.
        assert dy_ms <= 2 * lower + 1e-9
