"""Tests for the runtime's topology and scheduler knobs (ablation levers)."""
import numpy as np
import pytest

import repro.triolet as tri
from repro.cluster.machine import MachineSpec
from repro.runtime import CostContext, FREE_ALLOC, triolet_runtime
from repro.serial import register_function

MACHINE = MachineSpec(nodes=4, cores_per_node=4)


@register_function
def sq(x):
    return x * x


@register_function
def triangular(iu):
    i, u = iu
    from repro.core import meter

    meter.tally_inner(int(u))
    return float(u)


class TestFlatTopology:
    def test_flat_results_match_two_level(self):
        xs = np.arange(500.0)
        with triolet_runtime(MACHINE) as rt:
            a = tri.sum(tri.map(sq, tri.par(xs)))
        with triolet_runtime(MACHINE, topology="flat") as rt_flat:
            b = tri.sum(tri.map(sq, tri.par(xs)))
        assert a == b

    def test_flat_uses_one_rank_per_core(self):
        xs = np.arange(500.0)
        with triolet_runtime(MACHINE, topology="flat") as rt:
            tri.sum(tri.par(xs))
        assert rt.last_section.nodes == MACHINE.total_cores

    def test_flat_ships_more_messages(self):
        xs = np.arange(2000.0)
        with triolet_runtime(MACHINE) as rt2:
            tri.sum(tri.par(xs))
        with triolet_runtime(MACHINE, topology="flat") as rtf:
            tri.sum(tri.par(xs))
        assert rtf.last_section.messages > rt2.last_section.messages

    def test_invalid_topology_rejected(self):
        with pytest.raises(ValueError):
            with triolet_runtime(MACHINE, topology="mesh"):
                pass


class TestSchedulerChoice:
    def _triangular_sum(self, scheduler):
        # Row i costs ~i: heavily imbalanced tasks.
        xs = np.arange(256.0)
        indexed = tri.zip(tri.indices(tri.domain(xs)), tri.iterate(xs))
        costs = CostContext(unit_time=1e-6)
        with triolet_runtime(
            MACHINE, costs=costs, alloc=FREE_ALLOC, scheduler=scheduler
        ) as rt:
            out = tri.sum(tri.map(triangular, tri.localpar(indexed)))
        return out, rt.elapsed

    def test_results_identical(self):
        a, _ = self._triangular_sum("worksteal")
        b, _ = self._triangular_sum("static")
        assert a == b

    def test_static_slower_on_irregular_work(self):
        _, dyn = self._triangular_sum("worksteal")
        _, stat = self._triangular_sum("static")
        assert stat >= dyn

    def test_invalid_scheduler_rejected(self):
        with pytest.raises(ValueError):
            with triolet_runtime(MACHINE, scheduler="fifo"):
                pass
