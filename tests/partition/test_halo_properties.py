"""Hypothesis properties for halo (ghost-cell) interval arithmetic.

The stencil planner, the invariant checker, and the bench guard all lean
on ``repro.partition.halo`` agreeing with itself.  Everything here is
checked against a brute-force row-set oracle: a ghost row is a row
within ``radius`` of the flattened slice set but not inside it.
"""
import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.data.views import slice_view, zip_view
from repro.partition import block_bounds
from repro.partition.halo import (
    flatten_intervals,
    halo_bytes_bound,
    halo_intervals,
    halo_rows,
    section_halos,
)

pytestmark = pytest.mark.views

extents = st.integers(0, 64)
radii = st.integers(0, 8)


def _interval(extent):
    return st.tuples(
        st.integers(0, extent), st.integers(0, extent)
    )


def _intervals(extent, max_size=6):
    return st.lists(_interval(extent), max_size=max_size)


def _rows(intervals):
    return {i for lo, hi in intervals for i in range(lo, hi)}


def _brute_ghosts(intervals, radius, extent):
    """Independent oracle: every row within ``radius`` of an occupied
    row, clamped to the array, minus the occupied rows themselves."""
    inside = _rows(intervals)
    near = {
        j
        for i in inside
        for j in range(max(0, i - radius), min(extent, i + radius + 1))
    }
    return near - inside


@st.composite
def _set_with_geometry(draw):
    extent = draw(st.integers(0, 64))
    radius = draw(radii)
    ivs = draw(_intervals(extent))
    return ivs, radius, extent


class TestHaloRowsOracle:
    @given(_set_with_geometry())
    def test_matches_brute_force_row_set(self, case):
        ivs, radius, extent = case
        out = halo_rows(ivs, radius, extent)
        assert _rows(out) == _brute_ghosts(ivs, radius, extent)

    @given(_set_with_geometry())
    def test_output_is_canonical(self, case):
        """Sorted, non-empty, pairwise disjoint and non-adjacent, and
        clamped to ``[0, extent)``."""
        ivs, radius, extent = case
        out = halo_rows(ivs, radius, extent)
        for lo, hi in out:
            assert 0 <= lo < hi <= extent
        for (_, ahi), (blo, _) in zip(out, out[1:]):
            assert blo > ahi

    @given(_set_with_geometry())
    def test_ghosts_disjoint_from_the_set(self, case):
        ivs, radius, extent = case
        assert not (_rows(halo_rows(ivs, radius, extent)) & _rows(ivs))

    @given(st.integers(0, 64), radii, extents)
    def test_single_block_special_case(self, lo, radius, extent):
        """``halo_intervals`` is ``halo_rows`` on a one-interval set."""
        hi = min(extent, lo + 7)
        lo = min(lo, extent)
        assert halo_rows([(lo, hi)], radius, extent) == halo_intervals(
            lo, hi, radius, extent
        )


class TestHaloIntervals:
    @given(st.integers(0, 64), st.integers(0, 64), radii, extents)
    def test_empty_block_gets_no_halo(self, lo, hi, radius, extent):
        if hi > lo:
            hi = lo  # force the empty case
        assert halo_intervals(lo, hi, radius, extent) == []

    @given(st.integers(0, 64), st.integers(1, 64), extents)
    def test_radius_zero_gets_no_halo(self, lo, width, extent):
        assert halo_intervals(lo, lo + width, 0, extent) == []

    @given(st.integers(0, 16), st.integers(1, 4), st.integers(4, 16))
    def test_radius_beyond_block_width_just_clamps(self, lo, width, radius):
        """radius >= block width is not special: the ghosts clamp to the
        array like any other case and never exceed ``radius`` per side."""
        extent = 32
        hi = min(extent, lo + width)
        lo = min(lo, hi)
        out = halo_intervals(lo, hi, radius, extent)
        assert len(out) <= 2
        for glo, ghi in out:
            assert 0 <= glo < ghi <= extent
            assert ghi - glo <= radius
        assert sum(ghi - glo for glo, ghi in out) <= 2 * radius

    @given(st.integers(1, 32), radii)
    def test_edge_blocks_clamp_to_the_array(self, width, radius):
        extent = 64
        at_left = halo_intervals(0, width, radius, extent)
        assert all(glo >= width for glo, _ in at_left)  # no left ghost
        at_right = halo_intervals(extent - width, extent, radius, extent)
        assert all(ghi <= extent - width for _, ghi in at_right)

    @given(st.integers(-8, -1))
    def test_negative_radius_raises(self, radius):
        with pytest.raises(ValueError):
            halo_intervals(0, 4, radius, 8)


class TestFlatten:
    @given(_intervals(64))
    def test_idempotent_and_row_preserving(self, ivs):
        flat = flatten_intervals(ivs)
        assert flatten_intervals(flat) == flat
        assert _rows(flat) == _rows(ivs)

    @given(_intervals(64))
    def test_canonical_form(self, ivs):
        flat = flatten_intervals(ivs)
        for lo, hi in flat:
            assert lo < hi
        for (_, ahi), (blo, _) in zip(flat, flat[1:]):
            assert blo > ahi

    @given(_set_with_geometry())
    def test_ghosts_invariant_under_flattening(self, case):
        """The ISSUE property: the ghost set of a composed slice set
        equals the ghost set of its flattened form."""
        ivs, radius, extent = case
        assert halo_rows(ivs, radius, extent) == halo_rows(
            flatten_intervals(ivs), radius, extent
        )


class TestComposedViews:
    @given(
        st.lists(st.tuples(st.integers(0, 48), st.integers(0, 48)),
                 min_size=1, max_size=4),
        radii,
    )
    def test_view_pipeline_ghosts_match_flattened_slices(self, cuts, radius):
        """Ghosts computed from a composed view pipeline's merged base
        intervals equal ghosts computed from the raw per-view slice
        list -- composition adds nothing the flattened set lacks."""
        extent = 48
        arr = np.arange(float(extent))
        raw = []
        views = []
        for lo, hi in cuts:
            lo, hi = min(lo, hi), max(lo, hi)
            raw.append((lo, hi))
            views.append(slice_view(arr, lo, hi))
        zv = zip_view(*views) if len(views) > 1 else views[0]
        per_base = zv.base_intervals()
        assert len(per_base) <= 1  # single shared base
        merged = next(iter(per_base.values()), [])
        # zip truncates every base to the shortest view's extent.
        n = len(zv)
        truncated = [(lo, min(hi, lo + n)) for lo, hi in raw]
        assert flatten_intervals(merged) == flatten_intervals(truncated)
        assert halo_rows(merged, radius, extent) == halo_rows(
            truncated, radius, extent
        )

    @given(st.integers(2, 48), st.data())
    def test_nested_slices_rebase_to_absolute_rows(self, n, data):
        arr = np.arange(float(n))
        lo1 = data.draw(st.integers(0, n - 1))
        hi1 = data.draw(st.integers(lo1, n))
        v = slice_view(arr, lo1, hi1)
        lo2 = data.draw(st.integers(0, hi1 - lo1))
        hi2 = data.draw(st.integers(lo2, hi1 - lo1))
        vv = slice_view(v, lo2, hi2)
        merged = next(iter(vv.base_intervals().values()), [])
        expect = [(lo1 + lo2, lo1 + hi2)] if hi2 > lo2 else []
        assert merged == flatten_intervals(expect)


class TestSectionBounds:
    @given(st.integers(0, 4096), st.integers(1, 16), radii,
           st.sampled_from([1, 8, 80]))
    def test_partition_ghosts_fit_under_the_bytes_bound(
        self, n, nranks, radius, row_nbytes
    ):
        """The checker's hard ceiling dominates every real partition:
        summing actual ghost rows over a block partition never exceeds
        ``halo_bytes_bound``."""
        bounds = block_bounds(n, nranks)
        halos = section_halos(bounds, radius, n)
        total = sum(
            (hi - lo) * row_nbytes for per in halos for lo, hi in per
        )
        assert total <= halo_bytes_bound(radius, nranks, row_nbytes)
        for (blo, bhi), per in zip(bounds, halos):
            assert _rows(per) == _brute_ghosts([(blo, bhi)], radius, n)
