"""Partition math tests, including hypothesis coverage properties."""
import pytest
from hypothesis import given, strategies as st

from repro.partition import block2d_bounds, block_bounds, chunk_bounds, grid_shape


class TestBlockBounds:
    def test_even_split(self):
        assert block_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split_sizes_within_one(self):
        sizes = [hi - lo for lo, hi in block_bounds(10, 3)]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_more_parts_than_items(self):
        bounds = block_bounds(2, 5)
        assert sum(hi - lo for lo, hi in bounds) == 2

    def test_zero_items(self):
        assert all(lo == hi for lo, hi in block_bounds(0, 4))

    def test_invalid(self):
        with pytest.raises(ValueError):
            block_bounds(5, 0)
        with pytest.raises(ValueError):
            block_bounds(-1, 2)

    @given(st.integers(0, 10_000), st.integers(1, 64))
    def test_cover_exactly(self, n, p):
        bounds = block_bounds(n, p)
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        for (_, a), (b, _) in zip(bounds, bounds[1:]):
            assert a == b

    @given(st.integers(0, 10_000), st.integers(1, 64))
    def test_balanced(self, n, p):
        sizes = [hi - lo for lo, hi in block_bounds(n, p)]
        assert max(sizes) - min(sizes) <= 1


class TestChunkBounds:
    def test_exact_chunks(self):
        assert chunk_bounds(6, 2) == [(0, 2), (2, 4), (4, 6)]

    def test_ragged_tail(self):
        assert chunk_bounds(7, 3) == [(0, 3), (3, 6), (6, 7)]

    def test_empty(self):
        assert chunk_bounds(0, 4) == [(0, 0)]

    @given(st.integers(0, 5000), st.integers(1, 100))
    def test_cover(self, n, c):
        bounds = chunk_bounds(n, c)
        assert sum(hi - lo for lo, hi in bounds) == n
        assert all(hi - lo <= c for lo, hi in bounds)


class TestGrid:
    def test_square_for_square_domain(self):
        assert grid_shape(4, 1000, 1000) == (2, 2)

    def test_tall_domain_prefers_row_split(self):
        py, px = grid_shape(8, 100_000, 10)
        assert py > px

    def test_wide_domain_prefers_col_split(self):
        py, px = grid_shape(8, 10, 100_000)
        assert px > py

    def test_prime_parts(self):
        assert grid_shape(7, 100, 100) in [(1, 7), (7, 1)]

    @given(st.integers(1, 64), st.integers(1, 1000), st.integers(1, 1000))
    def test_product_is_nparts(self, p, h, w):
        py, px = grid_shape(p, h, w)
        assert py * px == p

    def test_blocks_tile_domain(self):
        blocks = block2d_bounds(10, 7, 2, 3)
        assert len(blocks) == 6
        covered = set()
        for (ylo, yhi), (xlo, xhi) in blocks:
            for y in range(ylo, yhi):
                for x in range(xlo, xhi):
                    assert (y, x) not in covered
                    covered.add((y, x))
        assert len(covered) == 70

    @given(
        st.integers(0, 60),
        st.integers(0, 60),
        st.integers(1, 6),
        st.integers(1, 6),
    )
    def test_blocks_tile_exactly(self, h, w, py, px):
        blocks = block2d_bounds(h, w, py, px)
        total = sum((yhi - ylo) * (xhi - xlo) for (ylo, yhi), (xlo, xhi) in blocks)
        assert total == h * w
