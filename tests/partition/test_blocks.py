"""Partition math tests, including hypothesis coverage properties."""
import pytest
from hypothesis import given, strategies as st

from repro.partition import (
    block2d_bounds,
    block_bounds,
    chunk_bounds,
    grid_shape,
    missing_intervals,
    weighted_bounds,
)


class TestBlockBounds:
    def test_even_split(self):
        assert block_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split_sizes_within_one(self):
        sizes = [hi - lo for lo, hi in block_bounds(10, 3)]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_more_parts_than_items(self):
        bounds = block_bounds(2, 5)
        assert sum(hi - lo for lo, hi in bounds) == 2

    def test_zero_items(self):
        assert all(lo == hi for lo, hi in block_bounds(0, 4))

    def test_invalid(self):
        with pytest.raises(ValueError):
            block_bounds(5, 0)
        with pytest.raises(ValueError):
            block_bounds(-1, 2)

    @given(st.integers(0, 10_000), st.integers(1, 64))
    def test_cover_exactly(self, n, p):
        bounds = block_bounds(n, p)
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        for (_, a), (b, _) in zip(bounds, bounds[1:]):
            assert a == b

    @given(st.integers(0, 10_000), st.integers(1, 64))
    def test_balanced(self, n, p):
        sizes = [hi - lo for lo, hi in block_bounds(n, p)]
        assert max(sizes) - min(sizes) <= 1


class TestChunkBounds:
    def test_exact_chunks(self):
        assert chunk_bounds(6, 2) == [(0, 2), (2, 4), (4, 6)]

    def test_ragged_tail(self):
        assert chunk_bounds(7, 3) == [(0, 3), (3, 6), (6, 7)]

    def test_empty(self):
        assert chunk_bounds(0, 4) == [(0, 0)]

    @given(st.integers(0, 5000), st.integers(1, 100))
    def test_cover(self, n, c):
        bounds = chunk_bounds(n, c)
        assert sum(hi - lo for lo, hi in bounds) == n
        assert all(hi - lo <= c for lo, hi in bounds)


class TestGrid:
    def test_square_for_square_domain(self):
        assert grid_shape(4, 1000, 1000) == (2, 2)

    def test_tall_domain_prefers_row_split(self):
        py, px = grid_shape(8, 100_000, 10)
        assert py > px

    def test_wide_domain_prefers_col_split(self):
        py, px = grid_shape(8, 10, 100_000)
        assert px > py

    def test_prime_parts(self):
        assert grid_shape(7, 100, 100) in [(1, 7), (7, 1)]

    @given(st.integers(1, 64), st.integers(1, 1000), st.integers(1, 1000))
    def test_product_is_nparts(self, p, h, w):
        py, px = grid_shape(p, h, w)
        assert py * px == p

    def test_blocks_tile_domain(self):
        blocks = block2d_bounds(10, 7, 2, 3)
        assert len(blocks) == 6
        covered = set()
        for (ylo, yhi), (xlo, xhi) in blocks:
            for y in range(ylo, yhi):
                for x in range(xlo, xhi):
                    assert (y, x) not in covered
                    covered.add((y, x))
        assert len(covered) == 70

    @given(
        st.integers(0, 60),
        st.integers(0, 60),
        st.integers(1, 6),
        st.integers(1, 6),
    )
    def test_blocks_tile_exactly(self, h, w, py, px):
        blocks = block2d_bounds(h, w, py, px)
        total = sum((yhi - ylo) * (xhi - xlo) for (ylo, yhi), (xlo, xhi) in blocks)
        assert total == h * w


class TestEmptyTrailingBlocks:
    """More parts than items: trailing blocks are valid zero-length
    slices, never out-of-range and never negative."""

    @given(st.integers(0, 20), st.integers(1, 64))
    def test_every_bound_is_a_valid_slice(self, n, p):
        for lo, hi in block_bounds(n, p):
            assert 0 <= lo <= hi <= n

    def test_trailing_blocks_are_empty_not_missing(self):
        bounds = block_bounds(3, 8)
        assert len(bounds) == 8
        assert sum(hi - lo for lo, hi in bounds) == 3
        assert sum(1 for lo, hi in bounds if lo == hi) == 5
        # The empty blocks index real positions: slicing executes.
        import numpy as np

        xs = np.arange(3.0)
        parts = [xs[lo:hi] for lo, hi in bounds]
        assert sum(len(x) for x in parts) == 3
        assert all(len(xs[lo:hi]) == hi - lo for lo, hi in bounds)


class TestWeightedBounds:
    def test_proportional_split(self):
        bounds = weighted_bounds(100, [1.0, 3.0])
        assert bounds == [(0, 25), (25, 100)]

    def test_degenerate_weights_fall_back_to_uniform(self):
        for w in ([0.0, 0.0], [-1.0, -2.0], [float("inf"), 1.0]):
            assert weighted_bounds(100, w) == block_bounds(100, len(w))

    def test_nan_weight_is_a_zero_weight(self):
        assert weighted_bounds(100, [float("nan"), 1.0]) == [(0, 0), (0, 100)]

    @given(
        st.integers(0, 5000),
        st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1, max_size=16),
    )
    def test_cover_exactly_and_monotone(self, n, weights):
        bounds = weighted_bounds(n, weights)
        assert len(bounds) == len(weights)
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        for (lo, hi), (nlo, _nhi) in zip(bounds, bounds[1:]):
            assert lo <= hi == nlo

    @given(st.integers(1, 5000), st.integers(1, 16), st.integers(2, 50))
    def test_heavier_rank_never_gets_fewer_rows_in_two_way_split(
        self, n, light, ratio
    ):
        heavy = light * ratio
        (alo, ahi), (blo, bhi) = weighted_bounds(n, [light, heavy])
        assert ahi - alo <= bhi - blo


class TestMissingIntervals:
    def test_no_overlap(self):
        assert missing_intervals(0, 10, None) == [(0, 10)]
        assert missing_intervals(0, 10, (20, 30)) == [(0, 10)]

    def test_full_containment(self):
        assert missing_intervals(2, 8, (0, 10)) == []

    def test_partial_overlaps(self):
        assert missing_intervals(0, 10, (5, 15)) == [(0, 5)]
        assert missing_intervals(5, 15, (0, 10)) == [(10, 15)]
        assert missing_intervals(0, 20, (5, 15)) == [(0, 5), (15, 20)]

    def test_empty_request(self):
        assert missing_intervals(5, 5, (0, 10)) == []

    @given(
        st.integers(0, 100), st.integers(0, 100),
        st.integers(0, 100), st.integers(0, 100),
    )
    def test_missing_plus_have_covers_request(self, a, b, c, d):
        lo, hi = min(a, b), max(a, b)
        have = (min(c, d), max(c, d))
        missing = missing_intervals(lo, hi, have)
        covered = set()
        for mlo, mhi in missing:
            assert lo <= mlo < mhi <= hi  # non-empty, in range
            for i in range(mlo, mhi):
                assert i not in covered  # disjoint
                covered.add(i)
        for i in range(lo, hi):
            assert (i in covered) != (have[0] <= i < have[1])
