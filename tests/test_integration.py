"""Cross-module integration tests: ledgers, conservation, consistency.

These exercise whole flows (skeletons -> runtime -> simulated cluster ->
metrics) and assert the invariants the figures depend on: bytes are
conserved between senders and receivers, the program clock equals the sum
of section makespans, parallel results equal sequential results for the
same pipeline, and virtual timelines are causal.
"""
import numpy as np
import pytest

import repro.triolet as tri
from repro.cluster import MachineSpec, run_spmd
from repro.cluster.trace import check_causality
from repro.runtime import CostContext, triolet_runtime
from repro.serial import register_function

MACHINE = MachineSpec(nodes=4, cores_per_node=4)


@register_function
def sq(x):
    return x * x


@register_function
def pos(x):
    return x > 0


@register_function
def spread(x):
    return np.arange(float(int(x) % 4))


class TestLedgerConsistency:
    def test_bytes_conserved(self):
        def main(comm):
            comm.allreduce(np.arange(100.0), op=lambda a, b: a + b)
            return None

        res = run_spmd(MACHINE, main, nranks=4)
        sent = sum(m.bytes_sent for m in res.metrics.per_rank)
        received = sum(m.bytes_received for m in res.metrics.per_rank)
        assert sent == received
        msgs_out = sum(m.messages_sent for m in res.metrics.per_rank)
        msgs_in = sum(m.messages_received for m in res.metrics.per_rank)
        assert msgs_out == msgs_in

    def test_program_clock_is_sum_of_sections(self):
        xs = np.arange(1000.0)
        with triolet_runtime(MACHINE) as rt:
            tri.sum(tri.par(xs))
            tri.sum(tri.localpar(xs))
            rt.run_sequential(lambda: tri.sum(xs))
        assert rt.elapsed == pytest.approx(
            sum(s.makespan for s in rt.sections)
        )

    def test_makespan_at_least_any_rank_time(self):
        def main(comm):
            comm.compute(0.01 * (comm.rank + 1))
            comm.barrier()
            return None

        res = run_spmd(MACHINE, main, nranks=4)
        assert res.makespan == pytest.approx(max(res.final_clocks))
        assert all(res.makespan >= t for t in res.final_clocks)

    def test_traced_runtime_sections_are_causal(self):
        def main(comm):
            chunk = comm.scatter(
                [np.arange(50.0) + i for i in range(comm.size)]
                if comm.rank == 0
                else None
            )
            return comm.reduce(chunk.sum(), op=lambda a, b: a + b, root=0)

        res = run_spmd(MACHINE, main, nranks=4, trace=True)
        assert check_causality(res.trace) == []


class TestParallelEqualsSequential:
    """The paper's core promise: hints change performance, not meaning."""

    PIPELINES = {
        "map-sum": lambda it: tri.sum(tri.map(sq, it)),
        "filter-sum": lambda it: tri.sum(tri.filter(pos, it)),
        "concat-count": lambda it: tri.count(tri.concat_map(spread, it)),
        "filter-of-map-histogram": lambda it: tri.histogram(
            5, tri.map(lambda x: int(abs(x)) % 5, tri.filter(pos, it))
        ),
        "group": lambda it: tri.group_reduce(
            lambda x: int(x) % 3, lambda a, b: a + b, it
        ),
    }

    @pytest.mark.parametrize("name", sorted(PIPELINES))
    def test_hint_invariance(self, name):
        consume = self.PIPELINES[name]
        xs = np.arange(317.0) - 158.0  # odd size, positive and negative
        seq_result = consume(tri.iterate(xs))
        with triolet_runtime(MACHINE):
            par_result = consume(tri.par(xs))
            local_result = consume(tri.localpar(xs))
        if isinstance(seq_result, np.ndarray):
            np.testing.assert_allclose(par_result, seq_result)
            np.testing.assert_allclose(local_result, seq_result)
        else:
            assert par_result == seq_result
            assert local_result == seq_result

    def test_hint_invariance_across_machine_shapes(self):
        xs = np.arange(100.0) - 50.0
        seq = tri.sum(tri.filter(pos, tri.iterate(xs)))
        for nodes in (1, 2, 3, 5, 8):
            for cores in (1, 3, 16):
                with triolet_runtime(MachineSpec(nodes=nodes, cores_per_node=cores)):
                    assert tri.sum(tri.filter(pos, tri.par(xs))) == seq


class TestEndToEndPipelines:
    def test_chained_sections_share_data(self):
        """Output of one parallel section feeds the next."""
        rng = np.random.default_rng(0)
        xs = rng.standard_normal(400)
        with triolet_runtime(MACHINE) as rt:
            squared = tri.build(tri.map(sq, tri.par(xs)))
            total = tri.sum(tri.par(squared))
        assert total == pytest.approx(float((xs**2).sum()))
        assert len(rt.sections) == 2

    def test_mixed_hints_in_one_program(self):
        xs = np.arange(500.0)
        with triolet_runtime(MACHINE) as rt:
            a = tri.sum(tri.par(xs))
            b = tri.sum(tri.localpar(xs))
            c = tri.sum(tri.iterate(xs))  # sequential, no section
        assert a == b == c
        hints = [s.hint for s in rt.sections]
        assert hints == ["par", "localpar"]

    def test_virtual_time_monotone_in_work(self):
        costs = CostContext(unit_time=1e-6)
        times = []
        for n in (1000, 2000, 4000):
            with triolet_runtime(MACHINE, costs=costs) as rt:
                tri.sum(tri.map(sq, tri.par(np.arange(float(n)))))
            times.append(rt.elapsed)
        assert times[0] < times[1] < times[2]
