"""Setup shim for environments without the ``wheel`` package.

The canonical metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` (legacy ``setup.py develop``) on
offline machines where PEP 660 editable installs are unavailable.
"""
from setuptools import setup

setup()
